package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// promWriter renders snapshots in the Prometheus text exposition format.
// extra, when non-empty, is an additional label pair (e.g. `worker="1"`)
// appended to every series — the federation endpoint uses it to keep one
// worker's series distinguishable from another's. headers toggles the
// HELP/TYPE preamble so a federated export emits each metric's header once
// even though several workers contribute series.
type promWriter struct {
	w       io.Writer
	extra   string
	headers bool
}

func (p *promWriter) header(name, typ, help string) {
	if p.headers {
		fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
}

// labels joins a base label set with the writer's extra labels.
func (p *promWriter) labels(base string) string {
	switch {
	case base == "":
		return p.extra
	case p.extra == "":
		return base
	default:
		return base + "," + p.extra
	}
}

// line writes one sample; val is the preformatted sample value. A metric
// with no labels at all is written bare (no `{}`).
func (p *promWriter) line(name, base, val string) {
	if l := p.labels(base); l != "" {
		fmt.Fprintf(p.w, "%s{%s} %s\n", name, l, val)
	} else {
		fmt.Fprintf(p.w, "%s %s\n", name, val)
	}
}

func d(v int64) string   { return fmt.Sprintf("%d", v) }
func g(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the registry's current snapshot in the Prometheus
// text exposition format (version 0.0.4). Counters carry a _total suffix;
// histograms are rendered as summaries with quantile labels; durations are
// converted to seconds as the Prometheus base unit.
func WritePrometheus(w io.Writer, s Snapshot) {
	(&promWriter{w: w, headers: true}).snapshot(s)
}

// WriteClusterPrometheus renders one snapshot per worker, each series
// carrying a worker="N" label; metric headers are emitted once (with the
// first worker's section). This is the body of /cluster/metrics.
func WriteClusterPrometheus(w io.Writer, statuses []WorkerStatus) {
	for i, ws := range statuses {
		p := &promWriter{w: w, extra: fmt.Sprintf(`worker="%d"`, ws.Worker), headers: i == 0}
		p.snapshot(ws.Snap)
		p.header("cep2asp_worker_goroutines", "gauge", "Goroutines in the worker process.")
		p.line("cep2asp_worker_goroutines", "", d(int64(ws.Goroutines)))
		p.header("cep2asp_worker_heap_bytes", "gauge", "Heap bytes in use by the worker process.")
		p.line("cep2asp_worker_heap_bytes", "", d(int64(ws.HeapBytes)))
		p.header("cep2asp_worker_heartbeat_age_ms", "gauge", "Milliseconds since the worker's last stats push (0 = local).")
		p.line("cep2asp_worker_heartbeat_age_ms", "", d(ws.LastSeenMs))
	}
}

func (p *promWriter) snapshot(s Snapshot) {
	p.header("cep2asp_operator_records_in_total", "counter", "Data records received by an operator instance.")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_records_in_total", opLabels(o), d(o.In))
	}
	p.header("cep2asp_operator_records_out_total", "counter", "Data records emitted by an operator instance.")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_records_out_total", opLabels(o), d(o.Out))
	}
	p.header("cep2asp_operator_late_records_total", "counter", "Data records that arrived at or below the instance's watermark.")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_late_records_total", opLabels(o), d(o.Late))
	}
	p.header("cep2asp_operator_watermark_ms", "gauge", "Current output watermark of the instance (event-time ms).")
	for _, o := range s.Operators {
		if o.WatermarkValid {
			p.line("cep2asp_operator_watermark_ms", opLabels(o), d(o.Watermark))
		}
	}
	p.header("cep2asp_operator_watermark_lag_ms", "gauge", "Max source event time minus the instance's watermark (event-time ms).")
	for _, o := range s.Operators {
		if o.WatermarkValid {
			p.line("cep2asp_operator_watermark_lag_ms", opLabels(o), d(o.WatermarkLagMs))
		}
	}
	p.header("cep2asp_operator_partial_matches", "gauge", "Operator-held state in accounting units (NFA partial matches, join/window buffers, aggregation groups).")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_partial_matches", opLabels(o), d(o.Partials))
	}
	p.header("cep2asp_operator_state_bytes", "gauge", "Approximate byte footprint of the instance's retained state.")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_state_bytes", opLabels(o), d(o.StateBytes))
	}
	p.header("cep2asp_operator_shed_records_total", "counter", "Accounting units evicted by the instance under the Shed overload policy.")
	for _, o := range s.Operators {
		p.line("cep2asp_operator_shed_records_total", opLabels(o), d(o.Shed))
	}
	p.header("cep2asp_operator_proc_seconds", "summary", "Per-record processing time inside OnRecord.")
	for _, o := range s.Operators {
		l := opLabels(o)
		p.line("cep2asp_operator_proc_seconds", l+`,quantile="0.5"`, g(secs(o.ProcP50)))
		p.line("cep2asp_operator_proc_seconds", l+`,quantile="0.9"`, g(secs(o.ProcP90)))
		p.line("cep2asp_operator_proc_seconds", l+`,quantile="0.99"`, g(secs(o.ProcP99)))
		p.line("cep2asp_operator_proc_seconds_sum", l, g(secs(o.ProcSum)))
		p.line("cep2asp_operator_proc_seconds_count", l, d(o.ProcCount))
	}

	p.header("cep2asp_edge_queue_depth", "gauge", "Records queued on the edge's receiver channels.")
	for _, e := range s.Edges {
		p.line("cep2asp_edge_queue_depth", edgeLabels(e), d(int64(e.Queued)))
	}
	p.header("cep2asp_edge_capacity", "gauge", "Total buffering capacity of the edge.")
	for _, e := range s.Edges {
		p.line("cep2asp_edge_capacity", edgeLabels(e), d(int64(e.Capacity)))
	}
	p.header("cep2asp_edge_sent_total", "counter", "Records pushed into the edge.")
	for _, e := range s.Edges {
		p.line("cep2asp_edge_sent_total", edgeLabels(e), d(e.Sent))
	}
	p.header("cep2asp_edge_blocked_seconds_total", "counter", "Time senders spent blocked on the edge's full channels (backpressure).")
	for _, e := range s.Edges {
		p.line("cep2asp_edge_blocked_seconds_total", edgeLabels(e), g(secs(e.BlockedNanos)))
	}
	p.header("cep2asp_edge_batch_records", "summary", "Records per channel transfer on the edge (edge batching).")
	for _, e := range s.Edges {
		l := edgeLabels(e)
		p.line("cep2asp_edge_batch_records", l+`,quantile="0.5"`, d(e.BatchP50))
		p.line("cep2asp_edge_batch_records", l+`,quantile="0.99"`, d(e.BatchP99))
		p.line("cep2asp_edge_batch_records_sum", l, d(e.Sent))
		p.line("cep2asp_edge_batch_records_count", l, d(e.Batches))
	}

	p.header("cep2asp_pool_hits_total", "counter", "Buffers recycled from an engine buffer pool.")
	for _, pl := range s.Pools {
		p.line("cep2asp_pool_hits_total", fmt.Sprintf(`pool="%s"`, escapeLabel(pl.Name)), d(pl.Hits))
	}
	p.header("cep2asp_pool_misses_total", "counter", "Fresh allocations because an engine buffer pool was empty.")
	for _, pl := range s.Pools {
		p.line("cep2asp_pool_misses_total", fmt.Sprintf(`pool="%s"`, escapeLabel(pl.Name)), d(pl.Misses))
	}

	if len(s.Nets) > 0 {
		p.header("cep2asp_net_frames_out_total", "counter", "Data-plane frames written to a network exchange peer.")
		for _, n := range s.Nets {
			p.line("cep2asp_net_frames_out_total", fmt.Sprintf(`peer="%s"`, escapeLabel(n.Peer)), d(n.FramesOut))
		}
		p.header("cep2asp_net_bytes_out_total", "counter", "Data-plane bytes (frames incl. headers) written to a network exchange peer.")
		for _, n := range s.Nets {
			p.line("cep2asp_net_bytes_out_total", fmt.Sprintf(`peer="%s"`, escapeLabel(n.Peer)), d(n.BytesOut))
		}
		p.header("cep2asp_net_frames_in_total", "counter", "Data-plane frames received from a network exchange peer.")
		for _, n := range s.Nets {
			p.line("cep2asp_net_frames_in_total", fmt.Sprintf(`peer="%s"`, escapeLabel(n.Peer)), d(n.FramesIn))
		}
		p.header("cep2asp_net_bytes_in_total", "counter", "Data-plane bytes (frames incl. headers) received from a network exchange peer.")
		for _, n := range s.Nets {
			p.line("cep2asp_net_bytes_in_total", fmt.Sprintf(`peer="%s"`, escapeLabel(n.Peer)), d(n.BytesIn))
		}
		p.header("cep2asp_net_peer_reconnects_total", "counter", "Mid-run re-dials of the outbound link to a network exchange peer.")
		for _, n := range s.Nets {
			p.line("cep2asp_net_peer_reconnects_total", fmt.Sprintf(`peer="%s"`, escapeLabel(n.Peer)), d(n.Reconnects))
		}
	}

	if s.MaxEventTime != unset {
		p.header("cep2asp_stream_max_event_time_ms", "gauge", "Largest event time emitted by any source (event-time ms).")
		p.line("cep2asp_stream_max_event_time_ms", "", d(s.MaxEventTime))
	}

	p.header("cep2asp_job_failures_total", "counter", "Job execution failures (isolated operator panics and other run-fatal errors).")
	p.line("cep2asp_job_failures_total", "", d(s.Health.Failures))
	p.header("cep2asp_job_restarts_total", "counter", "Supervised restarts performed after restartable failures.")
	p.line("cep2asp_job_restarts_total", "", d(s.Health.Restarts))
	p.header("cep2asp_job_dead_letters_total", "counter", "Poison records routed to the dead-letter queue.")
	p.line("cep2asp_job_dead_letters_total", "", d(s.Health.DeadLetters))
	p.header("cep2asp_job_dead_letters_dropped_total", "counter", "Dead letters evicted from the capped dead-letter queue (drop-oldest).")
	p.line("cep2asp_job_dead_letters_dropped_total", "", d(s.Health.DeadLettersDropped))
	p.header("cep2asp_net_reconnects_total", "counter", "Transient network faults healed by transparent data-link reconnects (no restart).")
	p.line("cep2asp_net_reconnects_total", "", d(s.Health.Reconnects))
	p.header("cep2asp_heartbeat_timeouts_total", "counter", "Worker liveness deadlines expired by the coordinator's failure detector.")
	p.line("cep2asp_heartbeat_timeouts_total", "", d(s.Health.HeartbeatTimeouts))
	p.header("cep2asp_partitions_healed_total", "counter", "Network partition windows healed (first delivery after a blackhole).")
	p.line("cep2asp_partitions_healed_total", "", d(s.Health.PartitionsHealed))
	if s.Health.HeartbeatTimeouts > 0 {
		p.header("cep2asp_failure_detect_ms", "gauge", "Silence duration at which the last liveness expiry fired (detection latency).")
		p.line("cep2asp_failure_detect_ms", "", d(s.Health.DetectLatencyMs))
	}
	if s.Health.LastFailure != "" {
		p.header("cep2asp_job_last_failure_info", "gauge", "Description of the most recent job failure.")
		p.line("cep2asp_job_last_failure_info", fmt.Sprintf(`error="%s"`, escapeLabel(s.Health.LastFailure)), "1")
	}

	if s.Overload.Armed {
		p.header("cep2asp_job_shed_records_total", "counter", "Accounting units evicted job-wide under the Shed overload policy.")
		p.line("cep2asp_job_shed_records_total", "", d(s.Overload.ShedRecords))
		p.header("cep2asp_job_peak_state_records", "gauge", "Largest job-wide buffered element count observed on the budgeted run.")
		p.line("cep2asp_job_peak_state_records", "", d(s.Overload.PeakState))
		p.header("cep2asp_job_matches_total", "counter", "Matches delivered to terminal (sink) nodes.")
		p.line("cep2asp_job_matches_total", "", d(s.Overload.Matches))
		p.header("cep2asp_job_lost_match_bound", "gauge", "Accumulated upper bound on matches evicted state could still have produced.")
		p.line("cep2asp_job_lost_match_bound", "", g(s.Overload.LostBound))
		p.header("cep2asp_job_recall_estimate", "gauge", "Guaranteed lower bound on achieved recall (1 = nothing lost).")
		p.line("cep2asp_job_recall_estimate", "", g(s.Overload.RecallEstimate))
	}

	for _, h := range s.Histograms {
		name := "cep2asp_" + sanitizeMetricName(h.Name) + "_seconds"
		p.header(name, "summary", "Named latency histogram.")
		p.line(name, `quantile="0.5"`, g(secs(h.P50)))
		p.line(name, `quantile="0.9"`, g(secs(h.P90)))
		p.line(name, `quantile="0.99"`, g(secs(h.P99)))
		p.line(name+"_sum", "", g(secs(h.Sum)))
		p.line(name+"_count", "", d(h.Count))
	}
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

func opLabels(o OperatorSnapshot) string {
	return fmt.Sprintf(`node="%s",instance="%d"`, escapeLabel(o.Node), o.Instance)
}

func edgeLabels(e EdgeSnapshot) string {
	return fmt.Sprintf(`from="%s",to="%s"`, escapeLabel(e.From), escapeLabel(e.To))
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeMetricName maps an arbitrary histogram name to the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// topology is the JSON document served at /debug/topology: the DAG with
// per-node aggregated metrics and live per-edge queue fill.
type topology struct {
	MaxEventTime int64          `json:"max_event_time"`
	Nodes        []topoNode     `json:"nodes"`
	Edges        []EdgeSnapshot `json:"edges"`
	Health       HealthSnapshot `json:"health"`
}

type topoNode struct {
	Name        string             `json:"name"`
	Parallelism int                `json:"parallelism"`
	In          int64              `json:"in"`
	Out         int64              `json:"out"`
	Late        int64              `json:"late"`
	Watermark   int64              `json:"watermark"`
	WmValid     bool               `json:"watermark_valid"`
	WmLagMs     int64              `json:"watermark_lag_ms"`
	Partials    int64              `json:"partials"`
	StateBytes  int64              `json:"state_bytes"`
	Shed        int64              `json:"shed"`
	ProcP99     int64              `json:"proc_p99_ns"`
	Instances   []OperatorSnapshot `json:"instances"`
}

// Topology aggregates a snapshot into the DAG view: instances grouped under
// their node (registration order preserved), watermark = min over instances,
// lag = max over instances.
func Topology(s Snapshot) any {
	t := topology{MaxEventTime: s.MaxEventTime, Edges: s.Edges, Health: s.Health}
	if t.Edges == nil {
		t.Edges = []EdgeSnapshot{}
	}
	idx := map[string]int{}
	for _, o := range s.Operators {
		i, ok := idx[o.Node]
		if !ok {
			i = len(t.Nodes)
			idx[o.Node] = i
			t.Nodes = append(t.Nodes, topoNode{Name: o.Node})
		}
		n := &t.Nodes[i]
		n.Parallelism++
		n.In += o.In
		n.Out += o.Out
		n.Late += o.Late
		n.Partials += o.Partials
		n.StateBytes += o.StateBytes
		n.Shed += o.Shed
		if o.WatermarkValid && (!n.WmValid || o.Watermark < n.Watermark) {
			n.Watermark, n.WmValid = o.Watermark, true
		}
		if o.WatermarkLagMs > n.WmLagMs {
			n.WmLagMs = o.WatermarkLagMs
		}
		if o.ProcP99 > n.ProcP99 {
			n.ProcP99 = o.ProcP99
		}
		n.Instances = append(n.Instances, o)
	}
	if t.Nodes == nil {
		t.Nodes = []topoNode{}
	}
	return t
}

// clusterWorkerView is the per-worker entry in /cluster/topology: liveness
// and resource gauges plus the per-peer data-plane frame counters, without
// the full operator snapshot (that lives in /cluster/metrics).
type clusterWorkerView struct {
	Worker     int            `json:"worker"`
	Name       string         `json:"name"`
	Attempt    int            `json:"attempt"`
	LastSeenMs int64          `json:"last_seen_ms"`
	Goroutines int            `json:"goroutines"`
	HeapBytes  uint64         `json:"heap_bytes"`
	Health     HealthSnapshot `json:"health"`
	RecordsIn  int64          `json:"records_in"`
	RecordsOut int64          `json:"records_out"`
	Nets       []NetSnapshot  `json:"nets,omitempty"`
	// Bounded-state degradation, federated per worker: total units shed,
	// peak job-wide state, and the worker's live recall estimate. Only
	// meaningful when Overload.Armed is set on the worker's snapshot.
	Shed           int64   `json:"shed,omitempty"`
	PeakState      int64   `json:"peak_state,omitempty"`
	RecallEstimate float64 `json:"recall_estimate,omitempty"`
}

// ClusterTopology reduces the federated worker statuses to the per-worker
// health view served at /cluster/topology.
func ClusterTopology(statuses []WorkerStatus) any {
	views := make([]clusterWorkerView, 0, len(statuses))
	for _, ws := range statuses {
		v := clusterWorkerView{
			Worker: ws.Worker, Name: ws.Name, Attempt: ws.Attempt,
			LastSeenMs: ws.LastSeenMs, Goroutines: ws.Goroutines,
			HeapBytes: ws.HeapBytes, Health: ws.Snap.Health, Nets: ws.Snap.Nets,
		}
		for _, o := range ws.Snap.Operators {
			v.RecordsIn += o.In
			v.RecordsOut += o.Out
		}
		if ov := ws.Snap.Overload; ov.Armed {
			v.Shed = ov.ShedRecords
			v.PeakState = ov.PeakState
			v.RecallEstimate = ov.RecallEstimate
		}
		views = append(views, v)
	}
	return map[string]any{"workers": views}
}

// Handler serves the registry's live observability surface:
//
//	/metrics          — this process's registry, Prometheus text format
//	/debug/topology   — this process's DAG view, JSON
//	/cluster/metrics  — federated per-worker series (coordinator only)
//	/cluster/topology — federated per-worker health (coordinator only)
//	/debug/pprof/*    — standard Go profiling endpoints
//	/healthz          — liveness probe
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/topology", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Topology(r.Snapshot()))
	})
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fn := r.ClusterFn()
		if fn == nil {
			http.Error(w, "no cluster provider: this process is not coordinating a distributed run", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteClusterPrometheus(w, fn())
	})
	mux.HandleFunc("/cluster/topology", func(w http.ResponseWriter, _ *http.Request) {
		fn := r.ClusterFn()
		if fn == nil {
			http.Error(w, "no cluster provider: this process is not coordinating a distributed run", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ClusterTopology(fn()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the live metrics endpoint on addr (":0" picks a free port)
// and returns the server plus the bound address. Shut it down with
// srv.Close when the run finishes.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
