package obs

import (
	"strings"
	"testing"
)

// TestOverloadStatsExport pins the overload observability plumbing: the
// engine installs a pull source, the snapshot carries its counters, the
// Prometheus rendering emits the job-level series, and ResetGraph drops
// the source so a finished run's counters never read as live.
func TestOverloadStatsExport(t *testing.T) {
	r := NewRegistry()

	if s := r.Snapshot(); s.Overload.Armed {
		t.Fatal("fresh registry reports armed overload stats")
	}
	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())
	if strings.Contains(sb.String(), "cep2asp_job_recall_estimate") {
		t.Fatal("unarmed snapshot rendered job overload series")
	}

	r.SetOverloadSource(func() OverloadStats {
		return OverloadStats{
			Armed:          true,
			ShedRecords:    42,
			PeakState:      512,
			Matches:        900,
			LostBound:      100,
			RecallEstimate: 0.9,
		}
	})
	s := r.Snapshot()
	if !s.Overload.Armed || s.Overload.ShedRecords != 42 || s.Overload.RecallEstimate != 0.9 {
		t.Fatalf("snapshot overload stats = %+v", s.Overload)
	}

	sb.Reset()
	WritePrometheus(&sb, s)
	out := sb.String()
	for _, want := range []string{
		"cep2asp_job_shed_records_total 42",
		"cep2asp_job_peak_state_records 512",
		"cep2asp_job_matches_total 900",
		"cep2asp_job_lost_match_bound 100",
		"cep2asp_job_recall_estimate 0.9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Federation: per-worker series carry the worker label, and the
	// topology view folds the counters into the worker row.
	sb.Reset()
	WriteClusterPrometheus(&sb, []WorkerStatus{{Worker: 3, Name: "w3", Snap: s}})
	if !strings.Contains(sb.String(), `cep2asp_job_recall_estimate{worker="3"} 0.9`) {
		t.Errorf("/cluster/metrics missing labeled recall estimate:\n%s", sb.String())
	}

	r.ResetGraph()
	if s := r.Snapshot(); s.Overload.Armed {
		t.Fatal("ResetGraph kept the finished run's overload source")
	}

	// Nil-safety mirrors the rest of the registry surface.
	var nilReg *Registry
	nilReg.SetOverloadSource(func() OverloadStats { return OverloadStats{} })
}
