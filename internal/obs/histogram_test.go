package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketMonotone(t *testing.T) {
	// Bucket indexes must be monotone in the sample value and bucket upper
	// bounds must be monotone in the index and contain their samples.
	prev := -1
	for _, v := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64 / 2, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		if up := bucketUpper(b); up < v {
			t.Fatalf("bucketUpper(%d) = %d < sample %d", b, up, v)
		}
		prev = b
	}
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotone at %d", i)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Every bucket's upper bound must be within 1/32 (~3.2%) of any value it
	// contains, for values above the exact range.
	for _, v := range []int64{33, 100, 999, 12345, 1 << 30, 987654321} {
		up := bucketUpper(bucketOf(v))
		if up < v {
			t.Fatalf("upper(%d) = %d below sample", v, up)
		}
		if rel := float64(up-v) / float64(v); rel > 1.0/16 {
			t.Fatalf("bucket error for %d is %.3f", v, rel)
		}
	}
}

// TestHistogramQuantileKnownDistribution asserts quantile correctness
// against a known distribution: the exact quantiles of the recorded sample
// set must be matched within the bucket resolution.
func TestHistogramQuantileKnownDistribution(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	values := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1µs, 1s) in nanoseconds — a realistic latency
		// spread of six orders of magnitude.
		v := int64(math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3)
		values = append(values, v)
		h.Record(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != int64(len(values)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(values))
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("Max = %d, want %d", h.Max(), sorted[len(sorted)-1])
	}
	var sum int64
	for _, v := range values {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}

	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 1.0} {
		exact := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
		got := h.Quantile(q)
		// The histogram reports a bucket upper bound: never below the exact
		// quantile's bucket lower edge, never more than ~2 bucket widths
		// (6.5%) above the exact value.
		if got < exact && float64(exact-got)/float64(exact) > 1.0/16 {
			t.Fatalf("q%.2f = %d, more than 6.5%% below exact %d", q, got, exact)
		}
		if got > exact && float64(got-exact)/float64(exact) > 1.0/16 {
			t.Fatalf("q%.2f = %d, more than 6.5%% above exact %d", q, got, exact)
		}
	}
}

func TestHistogramEmptyAndEdge(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	h.Record(0)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(1); q != 0 {
		t.Fatalf("Quantile(1) = %d, want 0", q)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	var h Histogram
	h.Record(1000003) // prime, lands mid-bucket
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1000003 {
			t.Fatalf("Quantile(%g) = %d, want clamped max 1000003", q, got)
		}
	}
}

func TestHistogramStateRoundTrip(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 37)
	}
	st := h.State()
	var h2 Histogram
	h2.Record(999999999) // overwritten by Restore
	h2.Restore(st)
	if h2.Count() != h.Count() || h2.Sum() != h.Sum() || h2.Max() != h.Max() {
		t.Fatalf("restore mismatch: count %d/%d sum %d/%d max %d/%d",
			h2.Count(), h.Count(), h2.Sum(), h.Sum(), h2.Max(), h.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if h2.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%g differs after restore", q)
		}
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const perG, goroutines = 10000, 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != perG*goroutines {
		t.Fatalf("Count = %d, want %d", h.Count(), perG*goroutines)
	}
}

// TestHistogramMergeMatchesUnion is the federation property: merging one
// histogram's state into another must be indistinguishable from recording
// the union of both sample sets into a single histogram — same count, sum,
// max, and every quantile. This is what makes the coordinator's merged
// cluster view trustworthy.
func TestHistogramMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		var a, b, union Histogram
		n := 100 + rng.Intn(4000)
		for i := 0; i < n; i++ {
			// Samples spanning many orders of magnitude.
			var v int64
			switch rng.Intn(4) {
			case 0:
				v = rng.Int63n(32) // exact unit buckets
			case 1:
				v = rng.Int63n(1 << 20)
			case 2:
				v = rng.Int63n(1 << 40)
			case 3:
				v = rng.Int63() // full range
			}
			if rng.Intn(2) == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			union.Record(v)
		}
		a.Merge(b.State())
		if a.Count() != union.Count() || a.Sum() != union.Sum() || a.Max() != union.Max() {
			t.Fatalf("trial %d: merge mismatch: count %d/%d sum %d/%d max %d/%d",
				trial, a.Count(), union.Count(), a.Sum(), union.Sum(), a.Max(), union.Max())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if a.Quantile(q) != union.Quantile(q) {
				t.Fatalf("trial %d: q%g = %d after merge, union has %d",
					trial, q, a.Quantile(q), union.Quantile(q))
			}
		}
	}
}

// A merge into a histogram that already holds samples must add, not
// replace (contrast Restore).
func TestHistogramMergeAccumulates(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	b.Record(20)
	st := b.State()
	a.Merge(st)
	a.Merge(st) // merging twice counts b's samples twice — it is an add
	if a.Count() != 3 || a.Sum() != 50 || a.Max() != 20 {
		t.Fatalf("after two merges: count %d sum %d max %d, want 3/50/20", a.Count(), a.Sum(), a.Max())
	}
}
