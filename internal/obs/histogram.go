// Package obs is the engine-wide observability layer: a per-operator-
// instance metrics registry (records in/out, late arrivals, queue depth and
// blocked-send time per edge, processing-time histograms, watermarks and
// watermark lag), HDR-style log-bucketed latency histograms, a snapshot API
// polled by metrics.Sampler so operator series share the resource-series
// timeline, and export surfaces (Prometheus text, topology JSON, CSV).
//
// The package is deliberately dependency-free (stdlib only) so every layer
// of the engine can attach to it without import cycles. All instruments are
// lock-free on the write path; a nil *Registry (or nil instrument handle)
// disables instrumentation entirely, which keeps the un-observed hot path at
// a single pointer comparison.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: values below 2^subBits land in exact unit
// buckets; above, each power of two is split into 2^subBits linear
// sub-buckets, bounding the relative quantile error at 2^-subBits (~3%).
// This is the bucketing scheme of HdrHistogram and Go's runtime/metrics,
// sized for int64 nanosecond durations (covers 1ns .. ~292y).
const (
	subBits    = 5
	subCount   = 1 << subBits // 32
	numBuckets = (64 - subBits) * subCount
)

// Histogram is a fixed-size log-bucketed histogram of non-negative int64
// samples (typically nanoseconds). Record is lock-free and safe for
// concurrent use; quantile reads race benignly with writers (they observe
// some recent consistent-enough state, as all monitoring counters do).
//
// The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a sample to its bucket index. Negative samples clamp to 0.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the MSB, >= subBits
	sub := int(u>>uint(exp-subBits)) - subCount
	return (exp-subBits)*subCount + subCount + sub
}

// bucketUpper returns the inclusive upper bound of a bucket, used as the
// conservative representative value for quantiles.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := uint((i-subCount)/subCount) + subBits
	sub := int64((i - subCount) % subCount)
	width := int64(1) << (exp - subBits)
	return int64(1)<<exp + (sub+1)*width - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average recorded sample, or 0 when empty.
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) with
// relative error bounded by the bucket width (~3%). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			u := bucketUpper(i)
			if m := h.max.Load(); u > m {
				return m // never report beyond the observed maximum
			}
			return u
		}
	}
	return h.max.Load()
}

// Quantiles returns upper bounds for several quantiles in one bucket walk.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// HistogramState is the serializable dense state of a histogram, used by
// checkpoint snapshots. Buckets are stored sparsely (index/count pairs).
type HistogramState struct {
	Idx   []int32
	N     []int64
	Count int64
	Sum   int64
	Max   int64
}

// State captures the histogram for serialization.
func (h *Histogram) State() HistogramState {
	st := HistogramState{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			st.Idx = append(st.Idx, int32(i))
			st.N = append(st.N, c)
		}
	}
	return st
}

// Merge folds a previously captured state into the histogram bucket-wise:
// the result is distributionally identical to a histogram that recorded the
// union of both sample sets (up to the shared bucket resolution). Used by
// metrics federation to aggregate worker histograms on the coordinator.
// Safe to call concurrently with Record.
func (h *Histogram) Merge(st HistogramState) {
	for k, i := range st.Idx {
		if i >= 0 && int(i) < numBuckets && k < len(st.N) {
			h.counts[i].Add(st.N[k])
		}
	}
	h.count.Add(st.Count)
	h.sum.Add(st.Sum)
	for {
		cur := h.max.Load()
		if st.Max <= cur || h.max.CompareAndSwap(cur, st.Max) {
			return
		}
	}
}

// Restore replaces the histogram contents with a previously captured state.
// Not safe to call concurrently with Record.
func (h *Histogram) Restore(st HistogramState) {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	for k, i := range st.Idx {
		if i >= 0 && int(i) < numBuckets {
			h.counts[i].Store(st.N[k])
		}
	}
	h.count.Store(st.Count)
	h.sum.Store(st.Sum)
	h.max.Store(st.Max)
}

// Reset zeroes the histogram. Not safe to call concurrently with Record.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}
