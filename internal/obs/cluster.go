package obs

// WorkerStatus is one worker's view in the federated cluster surface: its
// identity, liveness, process-level resource gauges, and the full metrics
// snapshot its registry reported most recently. The coordinator assembles
// one per worker (itself included, as worker 0) and serves the set through
// /cluster/metrics and /cluster/topology.
type WorkerStatus struct {
	Worker     int      `json:"worker"`
	Name       string   `json:"name"`
	Attempt    int      `json:"attempt"`
	LastSeenMs int64    `json:"last_seen_ms"` // heartbeat age; 0 = local/now
	Goroutines int      `json:"goroutines"`
	HeapBytes  uint64   `json:"heap_bytes"`
	Snap       Snapshot `json:"snapshot"`
}

// SetClusterFn installs (or, with nil, removes) the cluster status provider
// behind the /cluster/* endpoints. Nil-safe on a nil registry.
func (r *Registry) SetClusterFn(fn func() []WorkerStatus) {
	if r == nil {
		return
	}
	r.clusterMu.Lock()
	r.clusterFn = fn
	r.clusterMu.Unlock()
}

// ClusterFn returns the installed cluster status provider, or nil when this
// process is not coordinating a cluster.
func (r *Registry) ClusterFn() func() []WorkerStatus {
	if r == nil {
		return nil
	}
	r.clusterMu.Lock()
	defer r.clusterMu.Unlock()
	return r.clusterFn
}
