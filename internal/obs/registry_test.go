package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if op := r.Operator("x", 0); op != nil {
		t.Fatal("nil registry returned a handle")
	}
	if e := r.Edge("a", "b", 1, nil); e != nil {
		t.Fatal("nil registry returned an edge handle")
	}
	r.ObserveEventTime(5)
	r.ResetGraph()
	var op *OperatorMetrics
	op.ObserveEventTime(5)
	var em *EdgeMetrics
	if em.Queued() != 0 {
		t.Fatal("nil edge Queued != 0")
	}
	s := r.Snapshot()
	if len(s.Operators) != 0 || len(s.Edges) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	op := r.Operator("join", 1)
	op.In.Add(10)
	op.Out.Add(4)
	op.Late.Add(2)
	op.Partials.Store(7)
	op.Proc.Record(1000)
	op.Watermark.Store(500)
	op.ObserveEventTime(800)
	depth := 3
	e := r.Edge("src", "join", 64, func() int { return depth })
	e.Sent.Add(10)
	e.BlockedNanos.Add(999)

	s := r.Snapshot()
	if len(s.Operators) != 1 || len(s.Edges) != 1 {
		t.Fatalf("snapshot sizes: %d ops, %d edges", len(s.Operators), len(s.Edges))
	}
	o := s.Operators[0]
	if o.Node != "join" || o.Instance != 1 || o.In != 10 || o.Out != 4 || o.Late != 2 || o.Partials != 7 {
		t.Fatalf("operator snapshot mismatch: %+v", o)
	}
	if !o.WatermarkValid || o.Watermark != 500 {
		t.Fatalf("watermark: %+v", o)
	}
	if o.WatermarkLagMs != 300 {
		t.Fatalf("lag = %d, want 300", o.WatermarkLagMs)
	}
	if o.ProcCount != 1 || o.ProcMax != 1000 {
		t.Fatalf("proc histogram: %+v", o)
	}
	ed := s.Edges[0]
	if ed.Queued != 3 || ed.Capacity != 64 || ed.Sent != 10 || ed.BlockedNanos != 999 {
		t.Fatalf("edge snapshot mismatch: %+v", ed)
	}
	if math.Abs(ed.FillPct-3.0/64*100) > 1e-9 {
		t.Fatalf("fill pct = %g", ed.FillPct)
	}
}

func TestRegistryLagClampsAndUnset(t *testing.T) {
	r := NewRegistry()
	op := r.Operator("sink", 0)
	// No watermark yet: invalid, zero lag.
	s := r.Snapshot()
	if s.Operators[0].WatermarkValid || s.Operators[0].WatermarkLagMs != 0 {
		t.Fatalf("unset watermark leaked: %+v", s.Operators[0])
	}
	// Watermark ahead of max event time (MaxWatermark flush): lag clamps to 0.
	op.Watermark.Store(math.MaxInt64)
	r.ObserveEventTime(100)
	s = r.Snapshot()
	if s.Operators[0].WatermarkLagMs != 0 {
		t.Fatalf("lag not clamped: %d", s.Operators[0].WatermarkLagMs)
	}
}

func TestRegistryResetGraphKeepsHistograms(t *testing.T) {
	r := NewRegistry()
	r.Operator("a", 0)
	r.Edge("a", "b", 1, nil)
	var h Histogram
	h.Record(42)
	r.RegisterHistogram("sink_detection_latency", &h)
	r.ResetGraph()
	s := r.Snapshot()
	if len(s.Operators) != 0 || len(s.Edges) != 0 {
		t.Fatal("ResetGraph left graph instruments")
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatal("ResetGraph dropped named histograms")
	}
	// Re-registering under the same name replaces the histogram.
	var h2 Histogram
	r.RegisterHistogram("sink_detection_latency", &h2)
	if s := r.Snapshot(); len(s.Histograms) != 1 || s.Histograms[0].Count != 0 {
		t.Fatalf("re-register did not replace: %+v", s.Histograms)
	}
}

func TestPrometheusAndTopologyEndpoints(t *testing.T) {
	r := NewRegistry()
	op := r.Operator("σ:q#1", 0)
	op.In.Add(5)
	op.Out.Add(3)
	op.Watermark.Store(1234)
	r.ObserveEventTime(2000)
	depth := 7
	r.Edge("src:\"QnV\"", "σ:q#1", 128, func() int { return depth })
	var h Histogram
	h.Record(5_000_000)
	r.RegisterHistogram("sink detection-latency", &h)

	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cep2asp_operator_records_in_total{node="σ:q#1",instance="0"} 5`,
		`cep2asp_operator_watermark_ms{node="σ:q#1",instance="0"} 1234`,
		`cep2asp_operator_watermark_lag_ms{node="σ:q#1",instance="0"} 766`,
		`cep2asp_edge_queue_depth{from="src:\"QnV\"",to="σ:q#1"} 7`,
		`cep2asp_stream_max_event_time_ms 2000`,
		`cep2asp_sink_detection_latency_seconds{quantile="0.99"}`,
		`cep2asp_sink_detection_latency_seconds_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/topology")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Nodes []struct {
			Name        string `json:"name"`
			Parallelism int    `json:"parallelism"`
			In          int64  `json:"in"`
		} `json:"nodes"`
		Edges []struct {
			From    string  `json:"from"`
			Queued  int     `json:"queued"`
			FillPct float64 `json:"fill_pct"`
		} `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(topo.Nodes) != 1 || topo.Nodes[0].Name != "σ:q#1" || topo.Nodes[0].In != 5 {
		t.Fatalf("topology nodes: %+v", topo.Nodes)
	}
	if len(topo.Edges) != 1 || topo.Edges[0].Queued != 7 {
		t.Fatalf("topology edges: %+v", topo.Edges)
	}
	if topo.Edges[0].FillPct <= 0 {
		t.Fatal("fill pct not computed")
	}
}

func TestTopologyAggregatesInstances(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		op := r.Operator("join", i)
		op.In.Add(int64(i + 1))
		op.Watermark.Store(int64(100 * (i + 1)))
	}
	r.ObserveEventTime(1000)
	topo := Topology(r.Snapshot()).(topology)
	if len(topo.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(topo.Nodes))
	}
	n := topo.Nodes[0]
	if n.Parallelism != 3 || n.In != 6 {
		t.Fatalf("aggregate mismatch: %+v", n)
	}
	if n.Watermark != 100 { // min over instances
		t.Fatalf("node watermark = %d, want min 100", n.Watermark)
	}
	if n.WmLagMs != 900 { // max lag over instances
		t.Fatalf("node lag = %d, want 900", n.WmLagMs)
	}
}

func TestRegistryHealthCounters(t *testing.T) {
	var nilr *Registry
	nilr.RecordFailure("boom")
	nilr.RecordRestart()
	nilr.RecordDeadLetter()
	if h := nilr.Health(); h != (HealthSnapshot{}) {
		t.Fatalf("nil registry health = %+v", h)
	}

	r := NewRegistry()
	r.RecordFailure("asp: operator join/0 panicked: boom")
	r.RecordRestart()
	r.RecordRestart()
	r.RecordDeadLetter()
	r.RecordDeadLetter()
	r.RecordDeadLetter()

	h := r.Health()
	if h.Failures != 1 || h.Restarts != 2 || h.DeadLetters != 3 {
		t.Fatalf("health = %+v", h)
	}
	if !strings.Contains(h.LastFailure, "join/0 panicked") {
		t.Fatalf("last failure = %q", h.LastFailure)
	}

	// Job-level health survives the graph reset a rebuilt attempt performs.
	r.Operator("join", 0)
	r.ResetGraph()
	if h := r.Health(); h.Failures != 1 || h.Restarts != 2 || h.DeadLetters != 3 {
		t.Fatalf("health after ResetGraph = %+v", h)
	}
	if s := r.Snapshot(); s.Health != h {
		t.Fatalf("snapshot health = %+v, want %+v", s.Health, h)
	}

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	text := b.String()
	for _, want := range []string{
		"cep2asp_job_failures_total 1",
		"cep2asp_job_restarts_total 2",
		"cep2asp_job_dead_letters_total 3",
		"cep2asp_job_last_failure_info",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	data, err := json.Marshal(Topology(r.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"restarts":2`) {
		t.Fatalf("topology json missing health: %s", data)
	}
}
