// Package supervise implements the job supervision layer: an automatic
// restart strategy in the style of Flink's fixed-delay/failure-rate restart
// strategies (Carbone et al., "State Management in Apache Flink"), paired
// with the engine's aligned-barrier checkpoints. A supervisor reruns a job
// attempt function after restartable failures, governed by an
// exponential-backoff-with-jitter policy and a restart budget over a
// rolling window; a record that keeps crashing the job across restarts is
// declared poison and handed to the caller for dead-lettering instead of
// crash-looping the job forever.
//
// The package is engine-agnostic: it sees attempts as functions returning
// errors and classifies them through two small interfaces implemented by
// the engine's failure types.
package supervise

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// Policy governs a supervisor's restarts.
type Policy struct {
	// MaxRestarts bounds restarts within the rolling Window; once exceeded
	// the job fails for real with ErrBudgetExhausted wrapping the last
	// failure. Zero or negative allows no restart.
	MaxRestarts int
	// Window is the rolling budget window; zero makes the budget a
	// lifetime total.
	Window time.Duration
	// InitialBackoff is the delay before the first restart; each further
	// consecutive restart multiplies it by Multiplier (default 2) up to
	// MaxBackoff.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64
	// Jitter spreads each delay uniformly over [d*(1-Jitter), d*(1+Jitter)]
	// so restart storms decorrelate; 0 disables, values are clamped to
	// [0, 1].
	Jitter float64
	// PoisonThreshold is the number of failures attributed to the same
	// record before it is declared poison (default 3).
	PoisonThreshold int
	// Seed seeds the jitter randomness; zero derives a seed from the
	// clock. Fixed seeds make test schedules reproducible.
	Seed int64
}

// DefaultPolicy returns the default restart policy: up to 5 restarts per
// rolling minute, 10ms initial backoff doubling to a 2s cap with 20%
// jitter, and a 3-strike poison threshold.
func DefaultPolicy() Policy {
	return Policy{
		MaxRestarts:     5,
		Window:          time.Minute,
		InitialBackoff:  10 * time.Millisecond,
		MaxBackoff:      2 * time.Second,
		Multiplier:      2,
		Jitter:          0.2,
		PoisonThreshold: 3,
	}
}

func (p Policy) withDefaults() Policy {
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff < p.InitialBackoff {
		p.MaxBackoff = p.InitialBackoff
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.PoisonThreshold <= 0 {
		p.PoisonThreshold = 3
	}
	return p
}

// Backoff returns the delay before restart number n (0-based), jittered by
// rng when non-nil.
func (p Policy) Backoff(n int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.InitialBackoff)
	for i := 0; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			break
		}
	}
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter + 2*p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// RestartableError marks failures a supervisor may recover from by
// restarting; the engine's OperatorFailure implements it. Errors without
// the interface (context cancellation, state budget, build errors) fail
// the job immediately.
type RestartableError interface {
	error
	Restartable() bool
}

// PoisonError optionally attributes a failure to one record by a stable
// identity key; repeated same-key failures trigger dead-lettering.
type PoisonError interface {
	PoisonKey() string
}

// ErrBudgetExhausted marks a job that failed more often than its restart
// budget allows; errors.Is works through the supervisor's wrapping.
var ErrBudgetExhausted = errors.New("supervise: restart budget exhausted")

// budget tracks restart times over the policy's rolling window.
type budget struct {
	p     Policy
	times []time.Time
}

func (b *budget) allow(now time.Time) bool {
	if b.p.Window > 0 {
		keep := b.times[:0]
		for _, t := range b.times {
			if now.Sub(t) < b.p.Window {
				keep = append(keep, t)
			}
		}
		b.times = keep
	}
	if len(b.times) >= b.p.MaxRestarts {
		return false
	}
	b.times = append(b.times, now)
	return true
}

// Letter is one dead-lettered record: a record whose processing kept
// crashing the job until the supervisor quarantined it.
type Letter struct {
	// Node and Instance locate the operator whose processing the record
	// crashed; Key is the record's stable identity, Summary a readable
	// rendering of its content.
	Node     string
	Instance int
	Key      string
	Summary  string
	// Failures is the number of job failures attributed to the record
	// before it was quarantined.
	Failures int
	// At is the wall-clock time the record was routed to the queue.
	At time.Time
}

// DefaultDLQCap bounds the dead-letter queue when no explicit Cap is set:
// an unbounded DLQ would turn a poison-record storm into the very memory
// exhaustion the quarantine machinery exists to prevent.
const DefaultDLQCap = 10_000

// DLQ is an in-memory dead-letter queue with a bounded ring buffer. The
// engine appends a Letter when a quarantined record is dropped from the
// stream; OnLetter, when set, is invoked synchronously with each one
// (callback sink). At capacity the OLDEST letter is evicted — never
// silently: Dropped counts evictions and OnDropped observes each one.
type DLQ struct {
	// Cap bounds the retained letters; <= 0 uses DefaultDLQCap.
	Cap      int
	OnLetter func(Letter)
	// OnDropped, when set, observes each letter evicted at capacity.
	OnDropped func(Letter)

	mu      sync.Mutex
	buf     []Letter // ring buffer of size cap once full
	start   int      // index of the oldest letter in buf
	count   int      // letters currently retained
	dropped int64    // letters evicted at capacity
}

func (d *DLQ) cap() int {
	if d.Cap > 0 {
		return d.Cap
	}
	return DefaultDLQCap
}

// Add routes one letter to the queue and the callback, evicting the oldest
// retained letter when the queue is at capacity.
func (d *DLQ) Add(l Letter) {
	if d == nil {
		return
	}
	d.mu.Lock()
	c := d.cap()
	var evicted Letter
	var didEvict bool
	switch {
	case d.count < c:
		if d.count < len(d.buf) {
			d.buf[(d.start+d.count)%len(d.buf)] = l
		} else {
			d.buf = append(d.buf, l)
		}
		d.count++
	default:
		evicted, didEvict = d.buf[d.start], true
		d.buf[d.start] = l
		d.start = (d.start + 1) % len(d.buf)
		d.dropped++
	}
	cb, dcb := d.OnLetter, d.OnDropped
	d.mu.Unlock()
	if didEvict && dcb != nil {
		dcb(evicted)
	}
	if cb != nil {
		cb(l)
	}
}

// Depth returns the number of letters currently retained.
func (d *DLQ) Depth() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Dropped returns the number of letters evicted at capacity.
func (d *DLQ) Dropped() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Letters returns a copy of the retained letters in arrival order.
func (d *DLQ) Letters() []Letter {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Letter, 0, d.count)
	for i := 0; i < d.count; i++ {
		out = append(out, d.buf[(d.start+i)%len(d.buf)])
	}
	return out
}

// WriteCSV dumps the queue as CSV (node, instance, key, summary, failures,
// at) — the file sink for offline poison-record triage.
func (d *DLQ) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "instance", "key", "summary", "failures", "at"}); err != nil {
		return err
	}
	for _, l := range d.Letters() {
		if err := cw.Write([]string{
			l.Node, strconv.Itoa(l.Instance), l.Key, l.Summary,
			strconv.Itoa(l.Failures), l.At.Format(time.RFC3339Nano),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Supervisor reruns an attempt function under a restart policy.
type Supervisor struct {
	// Policy governs backoff and the restart budget.
	Policy Policy
	// OnRestart, when set, observes each restart decision before its
	// backoff delay elapses: the 0-based restart number, the failure that
	// caused it, and the jittered delay.
	OnRestart func(restart int, cause error, delay time.Duration)
	// OnPoison, when set, is invoked once when a record's same-key failure
	// count reaches the policy's PoisonThreshold — the hook that
	// quarantines the record in the engine so the next attempt routes it
	// to the dead-letter queue instead of crashing again.
	OnPoison func(key string, failures int, cause error)
	// Sleep overrides the backoff sleep (tests); nil uses a timer honoring
	// ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Log, when set, receives structured supervision events (restart
	// decisions, poison quarantines) in addition to the hooks above.
	Log *slog.Logger
}

// Run executes attempt(ctx, n) with n = 0, 1, 2, ... until it returns nil
// (job finished), a non-restartable error, an exceeded restart budget, or
// ctx is done. It returns the number of restarts performed and the final
// error.
func (s *Supervisor) Run(ctx context.Context, attempt func(ctx context.Context, n int) error) (restarts int, err error) {
	policy := s.Policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	bud := &budget{p: policy}
	poisoned := make(map[string]int)
	consecutive := 0
	for n := 0; ; n++ {
		err = attempt(ctx, n)
		if err == nil {
			return restarts, nil
		}
		var re RestartableError
		if !errors.As(err, &re) || !re.Restartable() || ctx.Err() != nil {
			return restarts, err
		}
		var pe PoisonError
		if errors.As(err, &pe) {
			if key := pe.PoisonKey(); key != "" {
				poisoned[key]++
				if poisoned[key] == policy.PoisonThreshold {
					if s.OnPoison != nil {
						s.OnPoison(key, poisoned[key], err)
					}
					if s.Log != nil {
						s.Log.Warn("supervise: record quarantined as poison",
							"key", key, "failures", poisoned[key], "cause", err)
					}
				}
			}
		}
		if !bud.allow(time.Now()) {
			return restarts, fmt.Errorf("%w (%d restarts within %v): %w",
				ErrBudgetExhausted, policy.MaxRestarts, policy.Window, err)
		}
		delay := policy.Backoff(consecutive, rng)
		consecutive++
		if s.OnRestart != nil {
			s.OnRestart(restarts, err, delay)
		}
		if s.Log != nil {
			s.Log.Warn("supervise: restarting job",
				"restart", restarts, "delay", delay, "cause", err)
		}
		restarts++
		if sleepErr := s.sleep(ctx, delay); sleepErr != nil {
			return restarts, sleepErr
		}
	}
}

func (s *Supervisor) sleep(ctx context.Context, d time.Duration) error {
	if s.Sleep != nil {
		return s.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
