package supervise

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// restartableErr is a test double for the engine's OperatorFailure.
type restartableErr struct {
	msg string
	key string
}

func (e *restartableErr) Error() string     { return e.msg }
func (e *restartableErr) Restartable() bool { return true }
func (e *restartableErr) PoisonKey() string { return e.key }

func noSleep(context.Context, time.Duration) error { return nil }

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for n, w := range want {
		if got := p.Backoff(n, nil); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{InitialBackoff: 100 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	lo, hi := 50*time.Millisecond, 150*time.Millisecond
	varied := false
	first := p.Backoff(0, rng)
	for i := 0; i < 200; i++ {
		d := p.Backoff(0, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced identical delays")
	}
}

func TestBudgetRollingWindow(t *testing.T) {
	b := &budget{p: Policy{MaxRestarts: 2, Window: time.Minute}.withDefaults()}
	t0 := time.Unix(1000, 0)
	if !b.allow(t0) || !b.allow(t0.Add(time.Second)) {
		t.Fatal("first two restarts should be allowed")
	}
	if b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("third restart within the window should be denied")
	}
	// Outside the rolling window the early restarts expire.
	if !b.allow(t0.Add(2 * time.Minute)) {
		t.Fatal("restart after the window should be allowed again")
	}
}

func TestBudgetLifetimeWindow(t *testing.T) {
	b := &budget{p: Policy{MaxRestarts: 1}.withDefaults()}
	t0 := time.Unix(1000, 0)
	if !b.allow(t0) {
		t.Fatal("first restart should be allowed")
	}
	if b.allow(t0.Add(100 * time.Hour)) {
		t.Fatal("window 0 means a lifetime budget")
	}
}

func TestSupervisorRetriesThenSucceeds(t *testing.T) {
	s := &Supervisor{Policy: Policy{MaxRestarts: 5, Seed: 1}, Sleep: noSleep}
	var restartsSeen []int
	s.OnRestart = func(n int, cause error, d time.Duration) { restartsSeen = append(restartsSeen, n) }
	calls := 0
	restarts, err := s.Run(context.Background(), func(_ context.Context, n int) error {
		calls++
		if n < 3 {
			return &restartableErr{msg: fmt.Sprintf("boom %d", n)}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if restarts != 3 || calls != 4 {
		t.Fatalf("restarts = %d (calls %d), want 3 (4)", restarts, calls)
	}
	if len(restartsSeen) != 3 {
		t.Fatalf("OnRestart fired %d times, want 3", len(restartsSeen))
	}
}

func TestSupervisorBudgetExhaustion(t *testing.T) {
	s := &Supervisor{Policy: Policy{MaxRestarts: 2, Seed: 1}, Sleep: noSleep}
	restarts, err := s.Run(context.Background(), func(context.Context, int) error {
		return &restartableErr{msg: "always"}
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	var re *restartableErr
	if !errors.As(err, &re) {
		t.Fatal("budget-exhausted error should still wrap the structured failure")
	}
	if restarts != 2 {
		t.Fatalf("restarts = %d, want 2", restarts)
	}
}

func TestSupervisorNonRestartable(t *testing.T) {
	s := &Supervisor{Policy: DefaultPolicy(), Sleep: noSleep}
	plain := errors.New("build failed")
	calls := 0
	if _, err := s.Run(context.Background(), func(context.Context, int) error {
		calls++
		return plain
	}); !errors.Is(err, plain) {
		t.Fatalf("err = %v, want the original", err)
	}
	if calls != 1 {
		t.Fatalf("non-restartable failure retried (%d calls)", calls)
	}
}

func TestSupervisorHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Supervisor{Policy: Policy{MaxRestarts: 100, Seed: 1}, Sleep: noSleep}
	calls := 0
	_, err := s.Run(ctx, func(context.Context, int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return &restartableErr{msg: "boom"}
	})
	if err == nil || calls > 2 {
		t.Fatalf("cancelled supervisor kept restarting (calls %d, err %v)", calls, err)
	}
}

// TestSupervisorPoisonThreshold models the poison-record loop: the same
// record key fails the job repeatedly until OnPoison quarantines it, after
// which the attempt completes.
func TestSupervisorPoisonThreshold(t *testing.T) {
	s := &Supervisor{Policy: Policy{MaxRestarts: 10, PoisonThreshold: 3, Seed: 1}, Sleep: noSleep}
	poisonCalls := 0
	quarantined := false
	s.OnPoison = func(key string, failures int, cause error) {
		poisonCalls++
		if key != "e:7:100" || failures != 3 {
			t.Fatalf("OnPoison(%q, %d), want (e:7:100, 3)", key, failures)
		}
		quarantined = true
	}
	restarts, err := s.Run(context.Background(), func(context.Context, int) error {
		if quarantined {
			return nil // the engine now drops the record: attempt succeeds
		}
		return &restartableErr{msg: "poisoned", key: "e:7:100"}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if poisonCalls != 1 {
		t.Fatalf("OnPoison fired %d times, want exactly 1", poisonCalls)
	}
	if restarts != 3 {
		t.Fatalf("restarts = %d, want 3 (one per poisoned failure)", restarts)
	}
}

func TestDLQCallbackAndCSV(t *testing.T) {
	var viaCallback []Letter
	d := &DLQ{OnLetter: func(l Letter) { viaCallback = append(viaCallback, l) }}
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	d.Add(Letter{Node: "⋈w#1", Instance: 0, Key: "e:7:100", Summary: "event id=7", Failures: 3, At: at})
	d.Add(Letter{Node: "σ:q#2", Instance: 1, Key: "e:9:50", Summary: "event id=9", Failures: 3, At: at})
	if d.Depth() != 2 || len(viaCallback) != 2 {
		t.Fatalf("depth %d, callbacks %d, want 2 and 2", d.Depth(), len(viaCallback))
	}
	if got := d.Letters(); got[0].Key != "e:7:100" || got[1].Key != "e:9:50" {
		t.Fatalf("letters out of order: %+v", got)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"node,instance,key,summary,failures,at", "⋈w#1,0,e:7:100,event id=7,3", "σ:q#2,1,e:9:50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	// Nil-safety: a nil DLQ absorbs everything.
	var nilD *DLQ
	nilD.Add(Letter{})
	if nilD.Depth() != 0 || nilD.Letters() != nil {
		t.Fatal("nil DLQ should be inert")
	}
}

func TestDLQCapDropsOldest(t *testing.T) {
	var evicted []Letter
	d := &DLQ{Cap: 3, OnDropped: func(l Letter) { evicted = append(evicted, l) }}
	for i := 0; i < 5; i++ {
		d.Add(Letter{Key: fmt.Sprintf("k%d", i), Failures: i})
	}
	if d.Depth() != 3 {
		t.Fatalf("depth = %d, want cap 3", d.Depth())
	}
	if d.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", d.Dropped())
	}
	got := d.Letters()
	for i, want := range []string{"k2", "k3", "k4"} {
		if got[i].Key != want {
			t.Fatalf("letter[%d] = %q, want %q (drop-oldest order)", i, got[i].Key, want)
		}
	}
	if len(evicted) != 2 || evicted[0].Key != "k0" || evicted[1].Key != "k1" {
		t.Fatalf("OnDropped saw %+v, want k0 then k1", evicted)
	}
}

func TestDLQDefaultCap(t *testing.T) {
	d := &DLQ{}
	for i := 0; i < DefaultDLQCap+5; i++ {
		d.Add(Letter{Failures: i})
	}
	if d.Depth() != DefaultDLQCap {
		t.Fatalf("depth = %d, want default cap %d", d.Depth(), DefaultDLQCap)
	}
	if d.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", d.Dropped())
	}
	if got := d.Letters(); got[0].Failures != 5 {
		t.Fatalf("oldest retained letter has Failures=%d, want 5", got[0].Failures)
	}
}
