package core

import (
	"strings"
	"testing"
)

// Golden plan-explain tests: the rendered decomposition is user-facing (the
// cep2asp CLI prints it), so its shape is pinned here for each mapping of
// Table 1.
func TestExplainGoldens(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		opts    Options
		want    []string // substrings in order
	}{
		{
			name:    "conjunction → Cartesian product",
			pattern: `PATTERN AND(GXA a, GXB b) WITHIN 20 MINUTES`,
			want: []string{
				"-- FASP plan",
				"WindowJoin WITHIN 20 MINUTES SLIDE 1 MINUTE",
				"Scan GXA AS a",
				"Scan GXB AS b",
			},
		},
		{
			name:    "sequence → θ join with pushdown",
			pattern: `PATTERN SEQ(GXA a, GXB b) WHERE a.value > 5 WITHIN 20 MINUTES`,
			want: []string{
				"WindowJoin WITHIN 20 MINUTES SLIDE 1 MINUTE (ordered)",
				"Scan GXA AS a WHERE a.value > 5",
				"Scan GXB AS b",
			},
		},
		{
			name:    "disjunction → union",
			pattern: `PATTERN OR(GXA a, GXB b) WITHIN 20 MINUTES`,
			want: []string{
				"Union (2 branches)",
				"Scan GXA AS a",
				"Scan GXB AS b",
			},
		},
		{
			name:    "iteration → θ self joins",
			pattern: `PATTERN ITER(GXV v, 3) WITHIN 20 MINUTES`,
			want: []string{
				"WindowJoin",
				"WindowJoin",
				"Scan GXV AS v",
				"Scan GXV AS v",
				"Scan GXV AS v",
			},
		},
		{
			name:    "iteration under O2 → aggregation",
			pattern: `PATTERN ITER(GXV v, 3+) WITHIN 20 MINUTES`,
			opts:    Options{UseAggregation: true},
			want: []string{
				"-- FASP-O2 plan",
				"WindowAggregate count >= 3",
				"Scan GXV AS v",
			},
		},
		{
			name:    "negated sequence → next-occurrence UDF",
			pattern: `PATTERN SEQ(GXA a, !GXX x, GXB b) WITHIN 20 MINUTES`,
			want: []string{
				"WindowJoin WITHIN 20 MINUTES SLIDE 1 MINUTE (ordered, nseq-selection)",
				"NextOccurrence ¬GXX after a within WITHIN 20 MINUTES",
				"Scan GXA AS a",
				"Scan GXX AS x",
				"Scan GXB AS b",
			},
		},
		{
			name:    "O1+O3 → partitioned interval joins",
			pattern: `PATTERN SEQ(GXA a, GXB b) WHERE a.id == b.id WITHIN 20 MINUTES`,
			opts:    Options{UseIntervalJoin: true, UsePartitioning: true, Parallelism: 8},
			want: []string{
				"-- FASP-O1+O3 plan",
				"IntervalJoin WITHIN 20 MINUTES SLIDE 1 MINUTE (ordered, partitioned by [0].id==[0].id",
			},
		},
		{
			name:    "FCEP → one NFA over unioned sources",
			pattern: `PATTERN SEQ(GXA a, GXB b) WITHIN 20 MINUTES`,
			opts:    Options{},
			want: []string{
				"CEP-NFA (2 stages, skip-till-any-match, unary operator on unioned input)",
				"Scan GXA AS a",
				"Scan GXB AS b",
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pat := mustPattern(t, tc.pattern)
			var plan *Plan
			var err error
			if strings.HasPrefix(tc.name, "FCEP") {
				plan, err = TranslateFCEP(pat, tc.opts)
			} else {
				plan, err = Translate(pat, tc.opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			text := plan.Explain()
			pos := 0
			for _, want := range tc.want {
				idx := strings.Index(text[pos:], want)
				if idx < 0 {
					t.Fatalf("Explain missing %q after offset %d:\n%s", want, pos, text)
				}
				pos += idx + len(want)
			}
		})
	}
}
