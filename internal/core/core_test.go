package core

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

func mustPattern(t *testing.T, src string) *sea.Pattern {
	t.Helper()
	p, err := sea.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runPlan(t *testing.T, pat *sea.Pattern, opts Options, data map[event.Type][]event.Event) *asp.Results {
	t.Helper()
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	env, res, err := Build(plan, BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func sortedKeys(ms []*event.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	sort.Strings(out)
	return out
}

func equalSets(t *testing.T, label string, oracle, got []string) {
	t.Helper()
	if len(oracle) != len(got) {
		t.Fatalf("%s: oracle has %d matches, engine %d\noracle: %v\nengine: %v", label, len(oracle), len(got), oracle, got)
	}
	for i := range oracle {
		if oracle[i] != got[i] {
			t.Fatalf("%s: mismatch at %d: %q vs %q", label, i, oracle[i], got[i])
		}
	}
}

func genStream(rng *rand.Rand, typ event.Type, n int, maxMinute int64, id int64) []event.Event {
	used := map[int64]bool{}
	var out []event.Event
	for len(out) < n {
		m := rng.Int63n(maxMinute)
		if used[m] {
			continue
		}
		used[m] = true
		out = append(out, event.Event{
			Type: typ, ID: id, TS: m * event.Minute,
			Value: float64(rng.Intn(100)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// merge combines keyed streams of one type into one time-ordered source.
func merge(streams ...[]event.Event) []event.Event {
	var all []event.Event
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	return all
}

// optionMatrix: FASP plain, O1, and each with O3 where applicable.
var optionMatrix = []Options{
	{},
	{UseIntervalJoin: true},
}

// TestTranslationEquivalence is the paper's central correctness claim (§4,
// Negri et al. semantic equivalence): for every SEA operator, the
// decomposed ASP pipeline produces the oracle's deduplicated match set,
// with and without O1.
func TestTranslationEquivalence(t *testing.T) {
	type tcase struct {
		name    string
		pattern string
		types   []string
	}
	cases := []tcase{
		{
			name: "SEQ2",
			pattern: `PATTERN SEQ(TEA a, TEB b)
				WHERE a.value <= b.value
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB"},
		},
		{
			name: "SEQ3",
			pattern: `PATTERN SEQ(TEA a, TEB b, TEC c)
				WHERE a.value <= b.value
				WITHIN 6 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC"},
		},
		{
			name: "AND2",
			pattern: `PATTERN AND(TEA a, TEB b)
				WHERE a.value + b.value > 40
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB"},
		},
		{
			name: "OR2",
			pattern: `PATTERN OR(TEA a, TEB b)
				WHERE a.value > 30 AND b.value > 60
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB"},
		},
		{
			name: "ITER3",
			pattern: `PATTERN ITER(TEV v, 3)
				WHERE v[i].value < v[i+1].value
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEV"},
		},
		{
			name: "ITER2 threshold",
			pattern: `PATTERN ITER(TEV v, 2)
				WHERE v.value < 70
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEV"},
		},
		{
			name: "NSEQ",
			pattern: `PATTERN SEQ(TEA a, !TEX x, TEB b)
				WHERE x.value > 40
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEX", "TEB"},
		},
		{
			name: "SEQ with AND nested",
			pattern: `PATTERN SEQ(TEA a, AND(TEB b, TEC c))
				WITHIN 6 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC"},
		},
		{
			name: "OR nested in SEQ",
			pattern: `PATTERN SEQ(TEA a, OR(TEB b, TEC c))
				WITHIN 6 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC"},
		},
		{
			name: "equi keyed SEQ",
			pattern: `PATTERN SEQ(TEA a, TEB b)
				WHERE a.id == b.id
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pat := mustPattern(t, tc.pattern)
			for trial := 0; trial < 10; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*31 + 7))
				data := make(map[event.Type][]event.Event)
				var all []event.Event
				for _, tn := range tc.types {
					typ, _ := event.LookupType(tn)
					// Two sensors per stream to exercise keying.
					s := merge(
						genStream(rng, typ, 5, 25, 1),
						genStream(rng, typ, 5, 25, 2),
					)
					data[typ] = s
					all = append(all, s...)
				}
				oracle := sortedKeys(sea.Evaluate(pat, all))
				for _, opts := range optionMatrix {
					res := runPlan(t, pat, opts, data)
					equalSets(t, tc.name+"/"+opts.String(), oracle, sortedKeys(res.Matches()))
				}
				// O3 variants: partitioning must not change the result.
				for _, opts := range []Options{
					{UsePartitioning: true, Parallelism: 4},
					{UseIntervalJoin: true, UsePartitioning: true, Parallelism: 4},
				} {
					res := runPlan(t, pat, opts, data)
					equalSets(t, tc.name+"/"+opts.String(), oracle, sortedKeys(res.Matches()))
				}
			}
		})
	}
}

func TestTranslateRejectsUnboundedWithoutO2(t *testing.T) {
	pat := mustPattern(t, `PATTERN ITER(TEV v, 3+) WITHIN 10 MIN`)
	if _, err := Translate(pat, Options{}); err == nil {
		t.Fatal("unbounded iteration without O2 should fail")
	}
	if _, err := Translate(pat, Options{UseAggregation: true}); err != nil {
		t.Fatalf("unbounded iteration with O2 should translate: %v", err)
	}
}

func TestAggregationCountsWindows(t *testing.T) {
	// O2 approximates: one output per window with count >= m.
	pat := mustPattern(t, `PATTERN ITER(TEW v, 3) WITHIN 5 MINUTES SLIDE 5 MINUTES`)
	typ, _ := event.LookupType("TEW")
	data := map[event.Type][]event.Event{
		typ: {
			{Type: typ, ID: 1, TS: 0, Value: 1},
			{Type: typ, ID: 1, TS: 1 * event.Minute, Value: 2},
			{Type: typ, ID: 1, TS: 2 * event.Minute, Value: 3},
			{Type: typ, ID: 1, TS: 10 * event.Minute, Value: 4},
		},
	}
	res := runPlan(t, pat, Options{UseAggregation: true}, data)
	// Window [0,5) has 3 events -> one aggregate; [10,15) has 1 -> none.
	if got := res.Unique(); got != 1 {
		t.Fatalf("O2 outputs = %d, want 1", got)
	}
	if v := res.Matches()[0].Events[0].Value; v != 3 {
		t.Fatalf("count = %g, want 3", v)
	}
}

func TestPlanShapes(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(TEA a, TEB b, TEC c)
		WHERE a.value > 10 AND a.id == b.id AND b.id == c.id
		WITHIN 15 MINUTES`)

	plan, err := Translate(pat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two chained joins; filter pushed into a's scan.
	j, ok := plan.Root.(*JoinPlan)
	if !ok {
		t.Fatalf("root = %T, want *JoinPlan", plan.Root)
	}
	if j.Interval {
		t.Fatal("plain FASP must use sliding window joins")
	}
	if _, ok := j.Left.(*JoinPlan); !ok {
		t.Fatalf("left = %T, want nested *JoinPlan (left-deep decomposition)", j.Left)
	}
	inner := j.Left.(*JoinPlan)
	scanA, ok := inner.Left.(*ScanPlan)
	if !ok {
		t.Fatalf("innermost left = %T, want *ScanPlan", inner.Left)
	}
	if len(scanA.Filters) != 1 {
		t.Fatalf("filter pushdown failed: scan a has %d filters", len(scanA.Filters))
	}

	// O1 flips the join kind.
	planO1, _ := Translate(pat, Options{UseIntervalJoin: true})
	if !planO1.Root.(*JoinPlan).Interval {
		t.Fatal("O1 should use interval joins")
	}

	// O3 extracts equi keys.
	planO3, _ := Translate(pat, Options{UsePartitioning: true, Parallelism: 4})
	if planO3.Root.(*JoinPlan).Equi == nil {
		t.Fatal("O3 did not extract the equi key")
	}

	// Explain renders every node.
	text := plan.Explain()
	for _, want := range []string{"WindowJoin", "Scan TEA", "Scan TEB", "Scan TEC"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestJoinReorderingByFrequency(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(TEA a, TEB b, TEC c) WITHIN 15 MINUTES`)
	plan, err := Translate(pat, Options{Frequencies: map[string]float64{
		"TEA": 100, "TEB": 1, "TEC": 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest join first: (b ⋈ c), then a joins last. The final join
	// swaps a to the left side because it precedes b and c in the pattern
	// (ordered interval-join bounds need the earlier side left).
	root := plan.Root.(*JoinPlan)
	if scan, ok := root.Left.(*ScanPlan); !ok || scan.TypeName != "TEA" {
		t.Fatalf("most frequent stream should join last (left side), got %v", root.Left.Describe())
	}
	inner, ok := root.Right.(*JoinPlan)
	if !ok {
		t.Fatalf("right = %T, want the (b ⋈ c) join", root.Right)
	}
	if scan, ok := inner.Left.(*ScanPlan); !ok || scan.TypeName != "TEB" {
		t.Fatalf("least frequent stream should join first, got %v", inner.Left.Describe())
	}
	// Reordered plans stay semantically equivalent (ordered θ preds).
	rng := rand.New(rand.NewSource(99))
	ta, _ := event.LookupType("TEA")
	tb, _ := event.LookupType("TEB")
	tc, _ := event.LookupType("TEC")
	data := map[event.Type][]event.Event{
		ta: genStream(rng, ta, 8, 25, 1),
		tb: genStream(rng, tb, 8, 25, 1),
		tc: genStream(rng, tc, 8, 25, 1),
	}
	var all []event.Event
	for _, s := range data {
		all = append(all, s...)
	}
	oracle := sortedKeys(sea.Evaluate(pat, all))
	res := runPlan(t, pat, Options{Frequencies: map[string]float64{"TEA": 100, "TEB": 1, "TEC": 10}}, data)
	equalSets(t, "reordered", oracle, sortedKeys(res.Matches()))
}

func TestTranslateFCEPPlan(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(TEA a, TEB b) WHERE a.id == b.id WITHIN 5 MINUTES`)
	plan, err := TranslateFCEP(pat, Options{UsePartitioning: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := plan.Root.(*CEPPlan)
	if !ok {
		t.Fatalf("root = %T, want *CEPPlan", plan.Root)
	}
	if !cp.Keyed {
		t.Fatal("equi-keyed pattern should key the NFA")
	}
	if len(cp.Sources) != 2 {
		t.Fatalf("sources = %d, want 2", len(cp.Sources))
	}
	// Without partitioning: single-threaded NFA.
	plan2, _ := TranslateFCEP(pat, Options{})
	if plan2.Root.(*CEPPlan).Keyed {
		t.Fatal("keying requires O3")
	}
}

func TestDetectKeyAttr(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`PATTERN SEQ(TEA a, TEB b) WHERE a.id == b.id WITHIN 5 MIN`, "id"},
		{`PATTERN SEQ(TEA a, TEB b, TEC c) WHERE a.id == b.id AND b.id == c.id WITHIN 5 MIN`, "id"},
		{`PATTERN SEQ(TEA a, TEB b, TEC c) WHERE a.id == b.id WITHIN 5 MIN`, ""},
		{`PATTERN SEQ(TEA a, TEB b) WITHIN 5 MIN`, ""},
		{`PATTERN ITER(TEV v, 3) WHERE v[i].id == v[i+1].id WITHIN 5 MIN`, "id"},
	}
	for _, tc := range tests {
		pat := mustPattern(t, tc.src)
		if got := DetectKeyAttr(pat); got != tc.want {
			t.Errorf("DetectKeyAttr(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

// TestFCEPvsFASPEquivalence: both execution paths agree after dedup — the
// end-to-end statement of the paper's semantic-equivalence argument.
func TestFCEPvsFASPEquivalence(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(TEA a, !TEX x, TEB b)
		WHERE a.value <= b.value
		WITHIN 8 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("TEA")
	tb, _ := event.LookupType("TEB")
	tx, _ := event.LookupType("TEX")
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		data := map[event.Type][]event.Event{
			ta: genStream(rng, ta, 6, 30, 1),
			tb: genStream(rng, tb, 6, 30, 1),
			tx: genStream(rng, tx, 4, 30, 1),
		}
		fasp := runPlan(t, pat, Options{}, data)

		plan, err := TranslateFCEP(pat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		env, res, err := Build(plan, BuildConfig{
			Engine:      asp.Config{WatermarkInterval: 1},
			Data:        data,
			DedupSink:   true,
			KeepMatches: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Execute(context.Background()); err != nil {
			t.Fatal(err)
		}
		equalSets(t, "fcep-vs-fasp", sortedKeys(fasp.Matches()), sortedKeys(res.Matches()))
	}
}

func TestBuildMissingDataFails(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(TEA a, TEMissing b) WITHIN 5 MIN`)
	plan, err := Translate(pat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Build(plan, BuildConfig{Data: map[event.Type][]event.Event{}})
	if err == nil {
		t.Fatal("Build without data should fail")
	}
}

// Operator chaining must not change results, only topology.
func TestChainedOperatorsEquivalent(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(TEA a, TEB b)
		WHERE a.value >= 40 AND b.value <= 60 AND a.value <= b.value
		WITHIN 6 MINUTES SLIDE 1 MINUTE`)
	rng := rand.New(rand.NewSource(77))
	ta, _ := event.LookupType("TEA")
	tb, _ := event.LookupType("TEB")
	data := map[event.Type][]event.Event{
		ta: genStream(rng, ta, 20, 60, 1),
		tb: genStream(rng, tb, 20, 60, 1),
	}
	run := func(chain bool) []string {
		plan, err := Translate(pat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		env, res, err := Build(plan, BuildConfig{
			Engine:         asp.Config{WatermarkInterval: 1},
			Data:           data,
			DedupSink:      true,
			KeepMatches:    true,
			ChainOperators: chain,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Execute(context.Background()); err != nil {
			t.Fatal(err)
		}
		if chain {
			// Chained plans must not contain standalone filter nodes.
			for _, m := range env.NodeStats() {
				if strings.HasPrefix(m.Name, "σ:") {
					t.Fatalf("chained build still has filter node %s", m.Name)
				}
			}
		}
		return sortedKeys(res.Matches())
	}
	unchained, chained := run(false), run(true)
	equalSets(t, "chaining", unchained, chained)
}
