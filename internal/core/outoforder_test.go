package core

import (
	"context"
	"math/rand"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
	"cep2asp/internal/workload"
)

// Out-of-order ingestion: with a declared lateness bound, every execution
// path must still produce the oracle's match set — the event-time
// processing guarantee the paper attributes to ASP systems (§2, §6).

func runPlanLate(t *testing.T, pat *sea.Pattern, opts Options, fcep bool, data map[event.Type][]event.Event, lateness event.Time) *asp.Results {
	t.Helper()
	var plan *Plan
	var err error
	if fcep {
		plan, err = TranslateFCEP(pat, opts)
	} else {
		plan, err = Translate(pat, opts)
	}
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	env, res, err := Build(plan, BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		Lateness:    lateness,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

func TestOutOfOrderEquivalence(t *testing.T) {
	patterns := []string{
		`PATTERN SEQ(OOA a, OOB b) WHERE a.value <= b.value WITHIN 5 MINUTES SLIDE 1 MINUTE`,
		`PATTERN AND(OOA a, OOB b) WITHIN 5 MINUTES SLIDE 1 MINUTE`,
		`PATTERN ITER(OOA e, 3) WHERE e[i].value < e[i+1].value WITHIN 8 MINUTES SLIDE 1 MINUTE`,
		`PATTERN SEQ(OOA a, !OOX x, OOB b) WITHIN 6 MINUTES SLIDE 1 MINUTE`,
	}
	lateness := 3 * event.Minute
	for _, src := range patterns {
		pat := mustPattern(t, src)
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*17 + 5))
			data := make(map[event.Type][]event.Event)
			var all []event.Event
			for _, l := range pat.Leaves() {
				if _, ok := data[l.Type]; ok {
					continue
				}
				s := genStream(rng, l.Type, 10, 30, 1)
				all = append(all, s...)
				shuffled := workload.Disorder(s, lateness, int64(trial))
				if got := workload.MaxDisorder(shuffled); got > lateness {
					t.Fatalf("Disorder exceeded its bound: %d > %d", got, lateness)
				}
				data[l.Type] = shuffled
			}
			oracle := sortedKeys(sea.Evaluate(pat, all))
			fasp := runPlanLate(t, pat, Options{}, false, data, lateness)
			equalSets(t, src+"/FASP-late", oracle, sortedKeys(fasp.Matches()))
			o1 := runPlanLate(t, pat, Options{UseIntervalJoin: true}, false, data, lateness)
			equalSets(t, src+"/O1-late", oracle, sortedKeys(o1.Matches()))
			// FCEP supports SEQ/ITER/NSEQ only (Table 2).
			if _, isAnd := pat.Root.(*sea.AndNode); !isAnd {
				fcep := runPlanLate(t, pat, Options{}, true, data, lateness)
				equalSets(t, src+"/FCEP-late", oracle, sortedKeys(fcep.Matches()))
			}
		}
	}
}

func TestDisorderBoundProperty(t *testing.T) {
	q, _ := workload.QnV(workload.QnVConfig{Sensors: 5, Minutes: 200, Seed: 3})
	for _, d := range []event.Time{event.Minute, 5 * event.Minute, 20 * event.Minute} {
		shuffled := workload.Disorder(q, d, 99)
		if len(shuffled) != len(q) {
			t.Fatal("Disorder changed stream length")
		}
		if got := workload.MaxDisorder(shuffled); got > d {
			t.Fatalf("disorder %d exceeds bound %d", got, d)
		}
		// Multiset preserved.
		count := func(s []event.Event) map[event.Event]int {
			m := make(map[event.Event]int, len(s))
			for _, e := range s {
				m[e]++
			}
			return m
		}
		orig, got := count(q), count(shuffled)
		if len(orig) != len(got) {
			t.Fatal("Disorder altered the event multiset")
		}
		for e, n := range orig {
			if got[e] != n {
				t.Fatalf("Disorder altered event %v", e)
			}
		}
	}
	// Some actual disorder must be present for non-trivial delays.
	shuffled := workload.Disorder(q, 10*event.Minute, 1)
	if workload.MaxDisorder(shuffled) == 0 {
		t.Fatal("Disorder produced a perfectly ordered stream")
	}
}
