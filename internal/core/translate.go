package core

import (
	"fmt"
	"sort"

	"cep2asp/internal/cep"
	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/sea"
)

// Translate maps a SEA pattern into an ASP operator plan following Table 1,
// with the selected optimizations applied. The resulting plan decomposes
// the pattern workload into filters, joins, unions and aggregations, each
// an independent pipeline stage (§1, §4).
//
// Predicate placement: single-alias conjuncts are pushed into the scans
// (including per-constituent thresholds on iteration aliases, which hold
// universally); iteration-indexed conjuncts become θ predicates of the self
// joins; remaining conjuncts attach to the first join binding all their
// aliases. Conjuncts spanning disjunction branches are never fully bound
// and hold vacuously — matching the reference semantics' three-valued
// treatment.
func Translate(p *sea.Pattern, opts Options) (*Plan, error) {
	if opts.statsErr != nil {
		// Fail-fast: Advise recorded invalid stream statistics; building a
		// plan from them would silently misprice every decision.
		return nil, opts.statsErr
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	t := &translator{pat: p, opts: opts, ordered: make(map[string]map[string]bool)}
	t.classify()

	// Disjunction distributes outward so every union branch is OR-free:
	// SEQ(A, OR(B, C)) ≡ OR(SEQ(A, B), SEQ(A, C)). Each branch translates
	// independently; the top-level union is the ∪ mapping of Table 1.
	alts := orFree(p.Root)
	for _, alt := range alts {
		t.collectOrder(alt)
	}
	var roots []PlanNode
	for _, alt := range alts {
		t.resetForBranch()
		s, err := t.node(alt, true)
		if err != nil {
			return nil, err
		}
		if pend := t.unassignedAux(); pend != "" {
			return nil, fmt.Errorf("core: negated-sequence selection for alias %q was never bound", pend)
		}
		markIntermediateDedup(s.node, true)
		roots = append(roots, s.node)
	}
	root := roots[0]
	if len(roots) > 1 {
		root = &UnionPlan{Branches: roots}
	}
	return &Plan{Pattern: p, Root: root, Opts: opts}, nil
}

// markIntermediateDedup enables duplicate suppression on every join except
// the branch root: intermediate duplicates would multiply exponentially
// down a chain; the final stage keeps the paper's observable duplicates.
func markIntermediateDedup(n PlanNode, isRoot bool) {
	j, ok := n.(*JoinPlan)
	if !ok {
		return
	}
	j.Dedup = !isRoot
	markIntermediateDedup(j.Left, false)
	markIntermediateDedup(j.Right, false)
}

// orFree expands a pattern structure into OR-free alternatives by
// distributing disjunction over sequence and conjunction.
func orFree(n sea.Node) []sea.Node {
	switch v := n.(type) {
	case *sea.EventLeaf, *sea.IterNode:
		return []sea.Node{n}
	case *sea.OrNode:
		var out []sea.Node
		for _, c := range v.Children {
			out = append(out, orFree(c)...)
		}
		return out
	case *sea.SeqNode:
		return distribute(v.Children, func(cs []sea.Node) sea.Node { return &sea.SeqNode{Children: cs} })
	case *sea.AndNode:
		return distribute(v.Children, func(cs []sea.Node) sea.Node { return &sea.AndNode{Children: cs} })
	}
	return []sea.Node{n}
}

func distribute(children []sea.Node, rebuild func([]sea.Node) sea.Node) []sea.Node {
	combos := [][]sea.Node{nil}
	for _, c := range children {
		alts := orFree(c)
		var next [][]sea.Node
		for _, combo := range combos {
			for _, a := range alts {
				row := make([]sea.Node, len(combo)+1)
				copy(row, combo)
				row[len(combo)] = a
				next = append(next, row)
			}
		}
		combos = next
	}
	out := make([]sea.Node, len(combos))
	for i, combo := range combos {
		out[i] = rebuild(combo)
	}
	return out
}

// resetForBranch clears per-branch predicate assignments so each
// disjunction alternative binds its own copy of the shared conjuncts.
func (t *translator) resetForBranch() {
	for _, pp := range t.joinPreds {
		pp.assigned = false
	}
	t.aux = nil
}

type pendingPred struct {
	expr     sea.BoolExpr
	aliases  []string
	assigned bool
}

type pendingAux struct {
	t1Alias  string
	rights   []string
	assigned bool
}

type translator struct {
	pat  *sea.Pattern
	opts Options

	scanFilters map[string][]sea.BoolExpr
	pairwise    map[string][]sea.BoolExpr
	negPreds    map[string][]sea.BoolExpr
	joinPreds   []*pendingPred
	aux         []*pendingAux

	// ordered[a][b]: every constituent of alias a occurs strictly before
	// every constituent of alias b (sequence siblings).
	ordered map[string]map[string]bool
}

type sub struct {
	node    PlanNode
	aliases []string
	freq    float64
}

func (t *translator) classify() {
	t.scanFilters = make(map[string][]sea.BoolExpr)
	t.pairwise = make(map[string][]sea.BoolExpr)
	t.negPreds = make(map[string][]sea.BoolExpr)
	negated := make(map[string]bool)
	for _, l := range t.pat.Leaves() {
		if l.Negated {
			negated[l.Alias] = true
		}
	}
	for _, conj := range sea.Conjuncts(t.pat.Where) {
		refs := sea.Aliases(conj)
		hasNeg := false
		for _, a := range refs {
			if negated[a] {
				hasNeg = true
			}
		}
		switch {
		case hasNeg:
			for _, a := range refs {
				if negated[a] {
					t.negPreds[a] = append(t.negPreds[a], conj)
					break
				}
			}
		case sea.HasIndexedRef(conj):
			t.pairwise[refs[0]] = append(t.pairwise[refs[0]], conj)
		case len(refs) <= 1:
			if len(refs) == 1 {
				t.scanFilters[refs[0]] = append(t.scanFilters[refs[0]], conj)
			}
			// Zero-alias conjuncts (constant comparisons) are dropped
			// after folding: TRUE is a no-op; FALSE never parses here.
		default:
			t.joinPreds = append(t.joinPreds, &pendingPred{expr: conj, aliases: refs})
		}
	}
}

// collectOrder derives the strict temporal-order relation between aliases
// from the pattern structure: children of a sequence are pairwise ordered.
func (t *translator) collectOrder(n sea.Node) []string {
	switch v := n.(type) {
	case *sea.EventLeaf:
		if v.Negated {
			return nil
		}
		return []string{v.Alias}
	case *sea.IterNode:
		return []string{v.Leaf.Alias}
	case *sea.SeqNode:
		var all []string
		var groups [][]string
		for _, c := range v.Children {
			g := t.collectOrder(c)
			groups = append(groups, g)
			all = append(all, g...)
		}
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				for _, a := range groups[i] {
					for _, b := range groups[j] {
						if t.ordered[a] == nil {
							t.ordered[a] = make(map[string]bool)
						}
						t.ordered[a][b] = true
					}
				}
			}
		}
		return all
	case *sea.AndNode:
		var all []string
		for _, c := range v.Children {
			all = append(all, t.collectOrder(c)...)
		}
		return all
	case *sea.OrNode:
		var all []string
		for _, c := range v.Children {
			all = append(all, t.collectOrder(c)...)
		}
		return all
	}
	return nil
}

func (t *translator) scan(l *sea.EventLeaf) *ScanPlan {
	return &ScanPlan{
		TypeName: l.TypeName,
		Type:     l.Type,
		Alias:    l.Alias,
		Filters:  t.scanFilters[l.Alias],
	}
}

func (t *translator) freq(typeName string) float64 {
	if t.opts.Frequencies == nil {
		return 0
	}
	return t.opts.Frequencies[typeName]
}

func (t *translator) node(n sea.Node, root bool) (*sub, error) {
	switch v := n.(type) {
	case *sea.EventLeaf:
		if v.Negated {
			return nil, fmt.Errorf("core: negated leaf %q outside sequence translation", v.Alias)
		}
		return &sub{node: t.scan(v), aliases: []string{v.Alias}, freq: t.freq(v.TypeName)}, nil
	case *sea.IterNode:
		return t.iter(v, root)
	case *sea.SeqNode:
		return t.nary(v.Children, true)
	case *sea.AndNode:
		return t.nary(v.Children, false)
	case *sea.OrNode:
		return nil, fmt.Errorf("core: disjunction should have been distributed outward before node translation")
	}
	return nil, fmt.Errorf("core: unknown pattern node %T", n)
}

// iter maps ITER_m: under O2 (or for unbounded iterations) a window count
// aggregation; otherwise a chain of m-1 θ self joins (Table 1).
func (t *translator) iter(v *sea.IterNode, root bool) (*sub, error) {
	alias := v.Leaf.Alias
	if v.Unbounded && !t.opts.UseAggregation {
		return nil, fmt.Errorf("core: unbounded iteration of %q requires optimization O2 (aggregation); the θ self-join mapping supports exact m only (§4.3.2)", alias)
	}
	if t.opts.UseAggregation {
		if !root {
			return nil, fmt.Errorf("core: O2 aggregation applies to top-level iterations only; nested iteration of %q needs the self-join mapping", alias)
		}
		return &sub{
			node: &AggregatePlan{
				Scan:      t.scan(v.Leaf),
				M:         v.M,
				Unbounded: v.Unbounded,
				Window:    t.pat.Window,
				Equi:      t.opts.UsePartitioning && t.iterEquiAttr(alias) != "",
			},
			aliases: []string{alias},
			freq:    t.freq(v.Leaf.TypeName),
		}, nil
	}

	pairPred := sea.Conjoin(t.pairwise[alias])
	if _, isTrue := pairPred.(sea.TrueExpr); isTrue {
		pairPred = nil
	}
	equiAttr := ""
	if t.opts.UsePartitioning {
		equiAttr = t.iterEquiAttr(alias)
	}

	acc := &sub{node: t.scan(v.Leaf), aliases: []string{alias}, freq: t.freq(v.Leaf.TypeName)}
	for k := 1; k < v.M; k++ {
		join := &JoinPlan{
			Interval:  t.opts.UseIntervalJoin,
			Left:      acc.node,
			Right:     t.scan(v.Leaf),
			Ordered:   true,
			Window:    t.pat.Window,
			Orders:    []OrderPair{{Before: k - 1, After: k}},
			PairPred:  pairPred,
			PairAlias: alias,
		}
		if equiAttr != "" {
			join.Equi = &EquiSpec{LeftPos: 0, LeftAttr: equiAttr, RightPos: 0, RightAttr: equiAttr}
		}
		acc = &sub{node: join, aliases: append(acc.aliases, alias), freq: acc.freq}
	}
	if v.M == 1 {
		// Degenerate single occurrence: the scan alone.
		return acc, nil
	}
	return acc, nil
}

// iterEquiAttr detects the pairwise equality e[i].attr == e[i+1].attr that
// keys an iteration (O3): all constituents then share the attribute.
func (t *translator) iterEquiAttr(alias string) string {
	for _, conj := range t.pairwise[alias] {
		c, ok := conj.(sea.Cmp)
		if !ok || c.Op != sea.CmpEQ {
			continue
		}
		l, lok := c.L.(sea.AttrRef)
		r, rok := c.R.(sea.AttrRef)
		if lok && rok && l.Attr == r.Attr && l.Index != r.Index {
			return l.Attr
		}
	}
	return ""
}

// nary builds the join tree for a sequence or conjunction. With frequency
// estimates and no negation, children join in ascending frequency order —
// the manual reordering the decomposition enables (§4.2.2, §5.1.2) — as a
// left-deep chain; with a join-cost model attached (Options.WithJoinCost)
// the tree is instead built greedily cheapest-pair-first, which yields
// bushy/balanced shapes where they are cheaper. The temporal-order
// constraints are enforced through θ predicates computed from original
// pattern positions, so any join order is semantically equivalent.
func (t *translator) nary(children []sea.Node, seq bool) (*sub, error) {
	_ = seq // order constraints derive from collectOrder, not from here
	var elems []seqElement
	for _, c := range children {
		if leaf, ok := c.(*sea.EventLeaf); ok && leaf.Negated {
			if len(elems) == 0 {
				return nil, fmt.Errorf("core: negation of %q has no preceding element", leaf.Alias)
			}
			elems[len(elems)-1].neg = leaf
			continue
		}
		elems = append(elems, seqElement{node: c})
	}

	hasNeg := false
	subs := make([]*sub, len(elems))
	for i, el := range elems {
		var s *sub
		var err error
		if el.neg != nil {
			hasNeg = true
			s, err = t.negated(el, elems, i)
		} else {
			s, err = t.node(el.node, false)
		}
		if err != nil {
			return nil, err
		}
		subs[i] = s
	}

	if !hasNeg && t.opts.joinCost != nil && len(subs) > 1 {
		return t.greedyTree(subs)
	}

	order := make([]int, len(subs))
	for i := range order {
		order[i] = i
	}
	if !hasNeg && t.opts.Frequencies != nil {
		sort.SliceStable(order, func(a, b int) bool { return subs[order[a]].freq < subs[order[b]].freq })
	}

	acc := subs[order[0]]
	for _, i := range order[1:] {
		var err error
		acc, err = t.join(acc, subs[i])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// greedyTree builds a cost-based join tree: repeatedly join the pair of
// remaining sub-plans whose estimated output cardinality is smallest
// (ties: earliest pattern positions, keeping the construction
// deterministic). Flattened sequences are associative (§3.2), so any
// pairing is legal; the greedy choice re-balances nested SEQ(A, SEQ(B, C))
// shapes into whatever tree the estimates favour.
func (t *translator) greedyTree(subs []*sub) (*sub, error) {
	cost := t.opts.joinCost
	pool := append([]*sub{}, subs...)
	for len(pool) > 1 {
		bi, bj := 0, 1
		best := cost(pool[0].freq, pool[1].freq)
		for i := 0; i < len(pool); i++ {
			for j := i + 1; j < len(pool); j++ {
				if c := cost(pool[i].freq, pool[j].freq); c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		joined, err := t.join(pool[bi], pool[bj])
		if err != nil {
			return nil, err
		}
		joined.freq = best
		pool[bi] = joined
		pool = append(pool[:bj], pool[bj+1:]...)
	}
	return pool[0], nil
}

// seqElement pairs a positive sequence element with the negation that
// immediately follows it, if any.
type seqElement struct {
	node sea.Node
	neg  *sea.EventLeaf
}

// negated wraps the element preceding a negation into the next-occurrence
// UDF plan and registers the deferred ats selection against the following
// element (§4.1, Negated Sequence).
func (t *translator) negated(el seqElement, elems []seqElement, i int) (*sub, error) {
	t1Leaf, ok := el.node.(*sea.EventLeaf)
	if !ok || t1Leaf.Negated {
		return nil, fmt.Errorf("core: negation of %q must directly follow a positive event element; composite left neighbours are not expressible in the next-occurrence UDF", el.neg.Alias)
	}
	if i+1 >= len(elems) {
		return nil, fmt.Errorf("core: negation of %q has no following element", el.neg.Alias)
	}
	// Split the negated alias' predicates: per-event thresholds filter the
	// blocker stream; equalities with the T1 alias run inside the UDF.
	var scanPreds, equiT1 []sea.BoolExpr
	for _, conj := range t.negPreds[el.neg.Alias] {
		refs := sea.Aliases(conj)
		if len(refs) == 1 {
			scanPreds = append(scanPreds, conj)
			continue
		}
		la, _, ra, _, isEqui := sea.EquiPair(conj)
		other := la
		if other == el.neg.Alias {
			other = ra
		}
		if !isEqui || other != t1Leaf.Alias {
			return nil, fmt.Errorf("core: predicate %s on negated alias %q must be a per-event condition or an equality with the preceding element %q", conj, el.neg.Alias, t1Leaf.Alias)
		}
		equiT1 = append(equiT1, conj)
	}
	var rights []string
	for _, l := range elems[i+1].node.Leaves(nil) {
		if !l.Negated {
			rights = append(rights, l.Alias)
		}
	}
	t.aux = append(t.aux, &pendingAux{t1Alias: t1Leaf.Alias, rights: rights})
	plan := &NextOccurrencePlan{
		T1: t.scan(t1Leaf),
		Neg: &ScanPlan{
			TypeName: el.neg.TypeName,
			Type:     el.neg.Type,
			Alias:    el.neg.Alias,
			Filters:  scanPreds,
		},
		Window:   t.pat.Window,
		EquiT1:   equiT1,
		NegAlias: el.neg.Alias,
	}
	return &sub{node: plan, aliases: []string{t1Leaf.Alias}, freq: t.freq(t1Leaf.TypeName)}, nil
}

// join composes two sub-plans, deciding sides, order predicates, equi keys
// and predicate assignment.
func (t *translator) join(a, b *sub) (*sub, error) {
	// Put the pattern-earlier side left so ordered interval joins can use
	// the (0, W) bounds.
	if t.allBefore(b.aliases, a.aliases) {
		a, b = b, a
	}
	combined := append(append([]string{}, a.aliases...), b.aliases...)
	pos := firstPositions(combined)

	join := &JoinPlan{
		Interval: t.opts.UseIntervalJoin,
		Left:     a.node,
		Right:    b.node,
		Ordered:  t.allBefore(a.aliases, b.aliases),
		Window:   t.pat.Window,
	}

	// Order constraints between cross constituents with a known relation.
	for i, la := range a.aliases {
		for j, rb := range b.aliases {
			switch {
			case t.ordered[la][rb]:
				join.Orders = append(join.Orders, OrderPair{Before: i, After: len(a.aliases) + j})
			case t.ordered[rb][la]:
				join.Orders = append(join.Orders, OrderPair{Before: len(a.aliases) + j, After: i})
			}
		}
	}

	// Multi-alias predicates first fully bound here.
	bound := make(map[string]bool, len(combined))
	for _, al := range combined {
		bound[al] = true
	}
	for _, pp := range t.joinPreds {
		if pp.assigned {
			continue
		}
		all := true
		for _, al := range pp.aliases {
			if !bound[al] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		pp.assigned = true
		join.Preds = append(join.Preds, pp.expr)
		// Equi detection for O3: one side's alias on each input.
		if join.Equi == nil && t.opts.UsePartitioning {
			la, lat, ra, rat, isEqui := sea.EquiPair(pp.expr)
			if isEqui {
				if containsAlias(a.aliases, la) && containsAlias(b.aliases, ra) {
					join.Equi = &EquiSpec{LeftPos: indexOf(a.aliases, la), LeftAttr: lat, RightPos: indexOf(b.aliases, ra), RightAttr: rat}
				} else if containsAlias(a.aliases, ra) && containsAlias(b.aliases, la) {
					join.Equi = &EquiSpec{LeftPos: indexOf(a.aliases, ra), LeftAttr: rat, RightPos: indexOf(b.aliases, la), RightAttr: lat}
				}
			}
		}
	}

	// Negated-sequence selections first fully bound here.
	for _, pa := range t.aux {
		if pa.assigned || !bound[pa.t1Alias] {
			continue
		}
		allRights := true
		for _, r := range pa.rights {
			if !bound[r] {
				allRights = false
				break
			}
		}
		if !allRights {
			continue
		}
		pa.assigned = true
		check := AuxCheck{T1Pos: pos[pa.t1Alias]}
		for i, al := range combined {
			for _, r := range pa.rights {
				if al == r {
					check.RightPoss = append(check.RightPoss, i)
				}
			}
		}
		join.AuxChecks = append(join.AuxChecks, check)
	}

	return &sub{node: join, aliases: combined, freq: minFreq(a.freq, b.freq)}, nil
}

func (t *translator) allBefore(as, bs []string) bool {
	if len(as) == 0 || len(bs) == 0 {
		return false
	}
	for _, a := range as {
		for _, b := range bs {
			if !t.ordered[a][b] {
				return false
			}
		}
	}
	return true
}

func (t *translator) unassignedAux() string {
	for _, pa := range t.aux {
		if !pa.assigned {
			return pa.t1Alias
		}
	}
	return ""
}

func firstPositions(aliases []string) map[string]int {
	pos := make(map[string]int, len(aliases))
	for i, a := range aliases {
		if _, ok := pos[a]; !ok {
			pos[a] = i
		}
	}
	return pos
}

func containsAlias(list []string, a string) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func indexOf(list []string, a string) int {
	for i, x := range list {
		if x == a {
			return i
		}
	}
	return -1
}

func minFreq(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 || a < b {
		return a
	}
	return b
}

// TranslateFCEP builds the baseline plan: the entire pattern as one NFA
// operator over the union of all sources, under skip-till-any-match — the
// configuration the paper benchmarks (§5.1.2).
func TranslateFCEP(p *sea.Pattern, opts Options) (*Plan, error) {
	var key func(event.Event) int64
	if opts.UsePartitioning {
		if attr := DetectKeyAttr(p); attr != "" {
			key = eventKeyFn(attr)
		}
	}
	prog, err := cep.Compile(p, nfa.SkipTillAnyMatch, key)
	if err != nil {
		return nil, err
	}
	seen := make(map[event.Type]bool)
	var sources []*ScanPlan
	for _, l := range p.Leaves() {
		if seen[l.Type] {
			continue
		}
		seen[l.Type] = true
		sources = append(sources, &ScanPlan{TypeName: l.TypeName, Type: l.Type, Alias: l.Alias})
	}
	return &Plan{
		Pattern: p,
		Root:    &CEPPlan{Prog: prog, Sources: sources, Keyed: key != nil},
		Opts:    opts,
	}, nil
}

// DetectKeyAttr returns the attribute by which the whole pattern can be
// partitioned: every positive alias pair must be connected through
// equalities on one common attribute (the paper keys by sensor id, §5.2.3).
// Returns "" when no such attribute exists.
func DetectKeyAttr(p *sea.Pattern) string {
	// Gather equality attributes; accept when a single attribute connects
	// all positive aliases (or keys an iteration pairwise).
	counts := make(map[string]map[string]bool) // attr -> aliases covered
	for _, conj := range sea.Conjuncts(p.Where) {
		if la, lat, ra, rat, ok := sea.EquiPair(conj); ok && lat == rat {
			if counts[lat] == nil {
				counts[lat] = make(map[string]bool)
			}
			counts[lat][la] = true
			counts[lat][ra] = true
		}
		// Pairwise iteration equality: e[i].attr == e[i+1].attr.
		if c, ok := conj.(sea.Cmp); ok && c.Op == sea.CmpEQ {
			l, lok := c.L.(sea.AttrRef)
			r, rok := c.R.(sea.AttrRef)
			if lok && rok && l.Attr == r.Attr && l.Alias == r.Alias && l.Index != r.Index {
				if counts[l.Attr] == nil {
					counts[l.Attr] = make(map[string]bool)
				}
				counts[l.Attr][l.Alias] = true
			}
		}
	}
	var positives []string
	for _, l := range p.PositiveLeaves() {
		positives = append(positives, l.Alias)
	}
	for attr, covered := range counts {
		all := true
		for _, a := range positives {
			if !covered[a] {
				all = false
				break
			}
		}
		if all {
			return attr
		}
	}
	return ""
}

func eventKeyFn(attr string) func(event.Event) int64 {
	return func(e event.Event) int64 {
		if attr == event.AttrID {
			return e.ID
		}
		v, _ := e.Attr(attr)
		return int64(v)
	}
}
