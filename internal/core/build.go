package core

import (
	"fmt"
	"math"

	"cep2asp/internal/asp"
	"cep2asp/internal/cep"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// BuildConfig supplies the physical construction inputs: the engine
// configuration, the per-type input streams (each time-ordered, as produced
// by one source/sensor feed), and sink behaviour.
type BuildConfig struct {
	Engine asp.Config
	// Data holds one time-ordered event slice per event type; every type
	// the pattern references must be present.
	Data map[event.Type][]event.Event
	// StampIngest assigns wall-clock creation times at the sources, which
	// enables detection-latency measurement (§5.1.3).
	StampIngest bool
	// Lateness bounds the event-time disorder of the input streams:
	// watermarks trail the maximum seen timestamp by this much, letting
	// windows wait for stragglers (ASP event-time processing, §2's time
	// model). Zero expects time-ordered streams.
	Lateness event.Time
	// DedupSink eliminates duplicate matches at the sink (overlapping
	// sliding windows emit duplicates, §3.1.4); KeepMatches retains match
	// values for inspection.
	DedupSink   bool
	KeepMatches bool
	// SourceRatePerSec throttles every source to the given wall-clock
	// emission rate (0 = full speed): the controlled-ingestion setting
	// under which detection latency is meaningful (§5.1.3's metric is
	// measured at the maximum sustainable throughput, not beyond it).
	SourceRatePerSec float64
	// ChainOperators fuses pushed-down selections into the source edges
	// (the analogue of Flink's operator chaining): the filter runs inside
	// the producing instance, saving one channel hop per event. Off by
	// default to keep the paper-faithful topology; see the chaining
	// ablation benchmark.
	ChainOperators bool
}

// Build constructs the physical dataflow for a translated plan and returns
// the environment (run it with Execute) plus the result sink handle.
func Build(plan *Plan, bc BuildConfig) (*asp.Environment, *asp.Results, error) {
	env, results, err := BuildMulti([]*Plan{plan}, bc)
	if err != nil {
		return nil, nil, err
	}
	return env, results[0], nil
}

// BuildMulti constructs one dataflow executing several translated plans
// concurrently, sharing each event type's source among all consumers — the
// multi-query capability the paper lists among the features CEP systems
// lack for cloud environments (§6: "no CEP system exists that provides ...
// multi-query optimization"). Each plan gets its own result sink, in input
// order. Plans may mix decomposed and FCEP roots.
func BuildMulti(plans []*Plan, bc BuildConfig) (*asp.Environment, []*asp.Results, error) {
	return buildMulti(plans, bc, nil)
}

// BuildInto constructs the dataflow for one plan but delivers matches into
// an existing Results handle. This is the online re-planning path: the
// optimizer rebuilds the topology mid-run while the sink's dedup set and
// counters carry over, so the union of the old run and the rebuilt run's
// window-tail replay yields exactly the unique match set of an
// uninterrupted execution.
func BuildInto(plan *Plan, bc BuildConfig, res *asp.Results) (*asp.Environment, error) {
	if res == nil {
		return nil, fmt.Errorf("core: BuildInto needs a results handle")
	}
	env, _, err := buildMulti([]*Plan{plan}, bc, []*asp.Results{res})
	return env, err
}

func buildMulti(plans []*Plan, bc BuildConfig, sinks []*asp.Results) (*asp.Environment, []*asp.Results, error) {
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("core: no plans to build")
	}
	env := asp.NewEnvironment(bc.Engine)
	b := &builder{
		bc:      bc,
		env:     env,
		sources: make(map[event.Type]*asp.Stream),
	}
	results := make([]*asp.Results, len(plans))
	for i, plan := range plans {
		b.plan = plan
		stream, _, err := b.node(plan.Root)
		if err != nil {
			return nil, nil, fmt.Errorf("core: building plan %d: %w", i, err)
		}
		res := (*asp.Results)(nil)
		if sinks != nil {
			res = sinks[i]
		}
		if res == nil {
			res = asp.NewResults(bc.DedupSink, bc.KeepMatches)
		}
		stream.Sink(fmt.Sprintf("sink#%d", i), res.Operator())
		results[i] = res
	}
	return env, results, nil
}

type builder struct {
	plan    *Plan
	bc      BuildConfig
	env     *asp.Environment
	sources map[event.Type]*asp.Stream
	nameSeq int
}

func (b *builder) name(prefix string) string {
	b.nameSeq++
	return fmt.Sprintf("%s#%d", prefix, b.nameSeq)
}

func (b *builder) source(t event.Type, typeName string) (*asp.Stream, error) {
	if s, ok := b.sources[t]; ok {
		return s, nil
	}
	data, ok := b.bc.Data[t]
	if !ok {
		return nil, fmt.Errorf("core: no input data for event type %s", typeName)
	}
	var s *asp.Stream
	if b.bc.Lateness != 0 {
		// Negative lateness flows through so the engine's graph validation
		// rejects it with a descriptive error instead of silently clamping.
		s = b.env.SourceOutOfOrder("src:"+typeName, data, b.bc.StampIngest, b.bc.Lateness)
	} else {
		s = b.env.Source("src:"+typeName, data, b.bc.StampIngest)
	}
	if b.bc.SourceRatePerSec != 0 {
		// Same: non-positive rates are rejected at graph validation.
		s.Throttle(b.bc.SourceRatePerSec)
	}
	b.sources[t] = s
	return s, nil
}

// node builds the stream for a plan node and returns it with the node's
// alias layout.
func (b *builder) node(n PlanNode) (*asp.Stream, []string, error) {
	switch v := n.(type) {
	case *ScanPlan:
		s, err := b.scan(v)
		return s, []string{v.Alias}, err
	case *JoinPlan:
		return b.join(v)
	case *UnionPlan:
		var streams []*asp.Stream
		for _, br := range v.Branches {
			s, _, err := b.node(br)
			if err != nil {
				return nil, nil, err
			}
			streams = append(streams, s)
		}
		u := streams[0]
		if len(streams) > 1 {
			u = streams[0].Union(b.name("union"), streams[1:]...)
		}
		return u, v.Aliases(), nil
	case *AggregatePlan:
		return b.aggregate(v)
	case *NextOccurrencePlan:
		return b.nextOccurrence(v)
	case *CEPPlan:
		return b.cep(v)
	}
	return nil, nil, fmt.Errorf("core: unknown plan node %T", n)
}

func (b *builder) scan(v *ScanPlan) (*asp.Stream, error) {
	s, err := b.source(v.Type, v.TypeName)
	if err != nil {
		return nil, err
	}
	if len(v.Filters) == 0 {
		return s, nil
	}
	pred, err := sea.CompileBool(sea.Conjoin(v.Filters), sea.Layout{v.Alias: 0})
	if err != nil {
		return nil, fmt.Errorf("core: compiling filters of %s: %w", v.Alias, err)
	}
	filter := func(e event.Event) bool {
		return pred([]event.Event{e})
	}
	if b.bc.ChainOperators {
		return s.FilterFused(filter), nil
	}
	return s.Filter(b.name("σ:"+v.Alias), filter), nil
}

// attrKey converts an attribute value to a partition key: integral IDs map
// directly; float attributes hash via their bit pattern.
func attrKey(e event.Event, attr string) int64 {
	if attr == event.AttrID {
		return e.ID
	}
	v, _ := e.Attr(attr)
	if v == math.Trunc(v) {
		return int64(v)
	}
	return int64(math.Float64bits(v))
}

// recordKey extracts the partition key from a record's constituent at the
// given side-local position.
func recordKey(pos int, attr string) asp.KeyFn {
	return func(r asp.Record) int64 {
		if r.Kind == asp.KindEvent {
			return attrKey(r.Event, attr)
		}
		return attrKey(r.Match.Events[pos], attr)
	}
}

func (b *builder) join(v *JoinPlan) (*asp.Stream, []string, error) {
	left, leftAliases, err := b.node(v.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rightAliases, err := b.node(v.Right)
	if err != nil {
		return nil, nil, err
	}
	nl := len(leftAliases)

	newPred, err := b.compileJoinPredicate(v, nl, len(rightAliases))
	if err != nil {
		return nil, nil, err
	}

	var leftKey, rightKey asp.KeyFn
	parallelism := 1
	if v.Equi != nil && b.plan.Opts.UsePartitioning {
		leftKey = recordKey(v.Equi.LeftPos, v.Equi.LeftAttr)
		rightKey = recordKey(v.Equi.RightPos, v.Equi.RightAttr)
		parallelism = b.plan.Opts.Parallelism
	}

	w := v.Window.Size
	var op func(int) asp.Operator
	kind := "⋈w"
	if v.Interval {
		kind = "⋈i"
		lower := -w
		if v.Ordered {
			lower = 0
		}
		op = asp.NewIntervalJoin(asp.IntervalJoinSpec{
			Lower: lower, Upper: w,
			LeftKey: leftKey, RightKey: rightKey,
			NewPredicate: newPred,
		})
	} else {
		op = asp.NewWindowJoin(asp.WindowJoinSpec{
			Window: w, Slide: v.Window.Slide,
			LeftKey: leftKey, RightKey: rightKey,
			NewPredicate: newPred,
			DedupEmits:   v.Dedup,
		})
	}
	s := left.Connect2(b.name(kind), right, parallelism, leftKey, rightKey, op)
	return s, append(append([]string{}, leftAliases...), rightAliases...), nil
}

// compileJoinPredicate assembles the per-instance θ predicate: window span,
// temporal order pairs, iteration pairwise constraints, negated-sequence
// selections, and residual multi-alias predicates.
func (b *builder) compileJoinPredicate(v *JoinPlan, nl, nr int) (func() asp.JoinPredicate, error) {
	w := v.Window.Size
	orders := v.Orders
	auxChecks := v.AuxChecks

	var compiled []sea.Predicate
	if len(v.Preds) > 0 {
		layout := sea.Layout{}
		for i, a := range v.Aliases() {
			if _, ok := layout[a]; !ok {
				layout[a] = i
			}
		}
		for _, pe := range v.Preds {
			p, err := sea.CompileBool(pe, layout)
			if err != nil {
				return nil, fmt.Errorf("core: compiling join predicate %s: %w", pe, err)
			}
			compiled = append(compiled, p)
		}
	}

	var pair sea.PairPredicate
	if v.PairPred != nil {
		var err error
		pair, err = sea.CompilePair(v.PairPred, v.PairAlias)
		if err != nil {
			return nil, fmt.Errorf("core: compiling pairwise predicate %s: %w", v.PairPred, err)
		}
	}

	return func() asp.JoinPredicate {
		scratch := make([]event.Event, 0, nl+nr)
		at := func(l, r []event.Event, pos int) event.Event {
			if pos < nl {
				return l[pos]
			}
			return r[pos-nl]
		}
		return func(l, r []event.Event) bool {
			// Window span: all constituents within W (Eq. in §2's match
			// definition: every pair less than W apart).
			min, max := l[0].TS, l[0].TS
			for _, e := range l[1:] {
				if e.TS < min {
					min = e.TS
				}
				if e.TS > max {
					max = e.TS
				}
			}
			for _, e := range r {
				if e.TS < min {
					min = e.TS
				}
				if e.TS > max {
					max = e.TS
				}
			}
			if max-min >= w {
				return false
			}
			for _, o := range orders {
				if at(l, r, o.Before).TS >= at(l, r, o.After).TS {
					return false
				}
			}
			if pair != nil && !pair(l[nl-1], r[0]) {
				return false
			}
			for _, ac := range auxChecks {
				t1 := at(l, r, ac.T1Pos)
				// ats >= tsB of the following component: no blocker in
				// the open interval (e1.ts, e3.ts) — Eq. 14.
				tsB := at(l, r, ac.RightPoss[0]).TS
				for _, p := range ac.RightPoss[1:] {
					if ts := at(l, r, p).TS; ts < tsB {
						tsB = ts
					}
				}
				if t1.AuxTS < tsB {
					return false
				}
			}
			if len(compiled) > 0 {
				scratch = append(scratch[:0], l...)
				scratch = append(scratch, r...)
				for _, p := range compiled {
					if !p(scratch) {
						return false
					}
				}
			}
			return true
		}
	}, nil
}

func (b *builder) aggregate(v *AggregatePlan) (*asp.Stream, []string, error) {
	s, err := b.scan(v.Scan)
	if err != nil {
		return nil, nil, err
	}
	var key asp.KeyFn
	parallelism := 1
	if v.Equi && b.plan.Opts.UsePartitioning {
		key = recordKey(0, event.AttrID)
		parallelism = b.plan.Opts.Parallelism
	}
	outType := v.Scan.Type
	op := asp.NewWindowAggregate(asp.WindowAggregateSpec{
		Window:   v.Window.Size,
		Slide:    v.Window.Slide,
		Key:      key,
		MinCount: int64(v.M),
		Output: func(k int64, windowEnd event.Time, a asp.AggResult) event.Event {
			return event.Event{
				Type: outType, ID: k, TS: windowEnd,
				Value:  float64(a.Count),
				Ingest: a.Ingest,
			}
		},
	})
	return s.Process(b.name("γcount"), parallelism, key, op), []string{v.Scan.Alias}, nil
}

func (b *builder) nextOccurrence(v *NextOccurrencePlan) (*asp.Stream, []string, error) {
	t1, err := b.scan(v.T1)
	if err != nil {
		return nil, nil, err
	}
	neg, err := b.scan(v.Neg)
	if err != nil {
		return nil, nil, err
	}

	var blocker func(e1, e2 event.Event) bool
	if len(v.EquiT1) > 0 {
		pred, err := sea.CompileBool(sea.Conjoin(v.EquiT1), sea.Layout{v.T1.Alias: 0, v.NegAlias: 1})
		if err != nil {
			return nil, nil, fmt.Errorf("core: compiling blocker correlation: %w", err)
		}
		blocker = func(e1, e2 event.Event) bool { return pred([]event.Event{e1, e2}) }
	}

	// Key the UDF by the correlated attribute when partitioning: equal
	// attributes land in one instance; the blocker predicate still
	// verifies exact equality.
	var key asp.KeyFn
	parallelism := 1
	if b.plan.Opts.UsePartitioning {
		if attr := equiAttrOf(v.EquiT1); attr != "" {
			key = func(r asp.Record) int64 { return attrKey(r.Event, attr) }
			parallelism = b.plan.Opts.Parallelism
		}
	}

	u := t1.Union(b.name("∪nseq"), neg)
	s := u.Process(b.name("nextOcc"), parallelism, key, asp.NewNextOccurrence(asp.NextOccurrenceSpec{
		T1:      v.T1.Type,
		T2:      v.Neg.Type,
		Window:  v.Window.Size,
		Key:     key,
		Blocker: blocker,
	}))
	return s, []string{v.T1.Alias}, nil
}

func equiAttrOf(conjs []sea.BoolExpr) string {
	for _, c := range conjs {
		if _, lat, _, rat, ok := sea.EquiPair(c); ok && lat == rat {
			return lat
		}
	}
	return ""
}

func (b *builder) cep(v *CEPPlan) (*asp.Stream, []string, error) {
	var streams []*asp.Stream
	for _, sc := range v.Sources {
		s, err := b.source(sc.Type, sc.TypeName)
		if err != nil {
			return nil, nil, err
		}
		streams = append(streams, s)
	}
	u := streams[0]
	if len(streams) > 1 {
		u = streams[0].Union("∪all", streams[1:]...)
	}
	op, err := cep.NewOperator(v.Prog)
	if err != nil {
		return nil, nil, err
	}
	var key asp.KeyFn
	parallelism := 1
	if v.Keyed && v.Prog.Key != nil {
		progKey := v.Prog.Key
		key = func(r asp.Record) int64 { return progKey(r.Event) }
		parallelism = b.plan.Opts.Parallelism
	}
	return u.Process("cep-nfa", parallelism, key, op), nil, nil
}
