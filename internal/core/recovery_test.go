package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// Deterministic-replay property: for every operator class and both execution
// paths, killing a checkpointed run and restoring any complete snapshot into
// a freshly built graph reproduces exactly the uninterrupted run's match set.
// The oracle is the same translation mode run without interruption, so the
// property isolates recovery determinism from translation equivalence (which
// core_test.go already covers).

type translateFn func(*sea.Pattern, Options) (*Plan, error)

func buildReplay(t *testing.T, translate translateFn, pat *sea.Pattern, data map[event.Type][]event.Event, ck *asp.CheckpointSpec, ratePerSec float64) (*asp.Environment, *asp.Results) {
	t.Helper()
	plan, err := translate(pat, Options{})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	env, res, err := Build(plan, BuildConfig{
		Engine:           asp.Config{WatermarkInterval: 1, Checkpoint: ck},
		Data:             data,
		DedupSink:        true,
		KeepMatches:      true,
		SourceRatePerSec: ratePerSec,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return env, res
}

func TestDeterministicReplayProperty(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		types   []string
		counts  []int
		fcep    bool
	}{
		{
			name: "SEQ",
			pattern: `PATTERN SEQ(RA a, RB b)
				WHERE a.value <= b.value
				WITHIN 6 MINUTES SLIDE 1 MINUTE`,
			types:  []string{"RA", "RB"},
			counts: []int{60, 60},
			fcep:   true,
		},
		{
			name: "AND",
			pattern: `PATTERN AND(RA a, RB b)
				WHERE a.value + b.value > 40
				WITHIN 5 MINUTES SLIDE 1 MINUTE`,
			types:  []string{"RA", "RB"},
			counts: []int{60, 60},
			fcep:   false, // Table 2: FCEP has no conjunction operator.
		},
		{
			name: "ITER",
			pattern: `PATTERN ITER(RV v, 3)
				WHERE v[i].value < v[i+1].value
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			types:  []string{"RV"},
			counts: []int{90},
			fcep:   true,
		},
		{
			name: "NSEQ",
			pattern: `PATTERN SEQ(RA a, !RX x, RB b)
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types:  []string{"RA", "RX", "RB"},
			counts: []int{60, 30, 60},
			fcep:   true,
		},
	}
	modes := []struct {
		name      string
		translate translateFn
	}{
		{"ASP", Translate},
		{"FCEP", TranslateFCEP},
	}
	for _, tc := range cases {
		for _, mode := range modes {
			if mode.name == "FCEP" && !tc.fcep {
				continue
			}
			tc, mode := tc, mode
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				pat := mustPattern(t, tc.pattern)
				rng := rand.New(rand.NewSource(4242))
				data := make(map[event.Type][]event.Event)
				for i, tn := range tc.types {
					typ := event.RegisterType(tn)
					data[typ] = genStream(rng, typ, tc.counts[i], 200, 1)
				}

				// Oracle: the same mode, uninterrupted and unthrottled.
				oEnv, oRes := buildReplay(t, mode.translate, pat, data, nil, 0)
				if err := oEnv.Execute(context.Background()); err != nil {
					t.Fatal(err)
				}
				want := sortedKeys(oRes.Matches())
				if len(want) == 0 {
					t.Fatal("oracle produced no matches; test data is inert")
				}

				// Checkpointed run, throttled so barriers land mid-stream;
				// killed once at least one checkpoint completes.
				store := checkpoint.NewMemStore()
				cEnv, _ := buildReplay(t, mode.translate, pat, data,
					&asp.CheckpointSpec{Store: store, Interval: time.Millisecond}, 4000)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				go func() {
					deadline := time.Now().Add(5 * time.Second)
					for time.Now().Before(deadline) {
						if ids, _ := store.IDs(); len(ids) > 0 {
							time.Sleep(2 * time.Millisecond)
							cancel()
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
					cancel()
				}()
				if err := cEnv.Execute(ctx); err != nil && !errors.Is(err, context.Canceled) {
					t.Fatal(err)
				}
				ids, _ := store.IDs()
				if len(ids) == 0 {
					t.Fatal("no complete checkpoint before the kill")
				}

				// Restore a seeded-random snapshot — not necessarily the
				// latest — into a fresh graph. Any complete snapshot must
				// replay to the identical match set: pre-barrier results live
				// in the restored sink state, post-barrier results are
				// re-derived from the restored source offsets.
				pick := ids[rand.New(rand.NewSource(7)).Intn(len(ids))]
				rEnv, rRes := buildReplay(t, mode.translate, pat, data,
					&asp.CheckpointSpec{Store: store, Restore: true, RestoreID: pick}, 0)
				if err := rEnv.Execute(context.Background()); err != nil {
					t.Fatal(err)
				}
				equalSets(t, tc.name+"/"+mode.name, want, sortedKeys(rRes.Matches()))
			})
		}
	}
}
