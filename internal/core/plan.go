// Package core implements the paper's primary contribution: the general
// operator mapping of §4 that translates SEA patterns into ASP queries.
// Conjunction becomes a Cartesian product, sequence a θ join on timestamp
// order, disjunction a union, iteration a chain of θ self joins, and the
// negated sequence a next-occurrence UDF feeding a selective join (Table
// 1). Decomposing the pattern into multiple operators — instead of one
// stateful unary CEP operator — is what unlocks pipeline parallelism,
// operator reordering and key partitioning.
//
// The package exposes the three optimization opportunities of §4.3:
//
//	O1 — interval joins replace sliding window joins (content-based
//	     windows, no slide parameter, no duplicates);
//	O2 — iterations become window count aggregations (approximate,
//	     enables the Kleene+ variation, cannot express Kleene*);
//	O3 — equi predicates become partitioning keys, parallelizing the
//	     stateful operators.
package core

import (
	"fmt"
	"strings"

	"cep2asp/internal/event"
	"cep2asp/internal/nfa"
	"cep2asp/internal/sea"
)

// Options selects the execution mode and optimizations of a translation.
type Options struct {
	// UseIntervalJoin enables O1: interval joins instead of sliding
	// window joins.
	UseIntervalJoin bool
	// UseAggregation enables O2 for root-level iterations: a window count
	// aggregation instead of self joins. Unbounded iterations require it.
	UseAggregation bool
	// UsePartitioning enables O3: equi predicates become partition keys
	// and stateful operators run Parallelism instances.
	UsePartitioning bool
	// Parallelism is the instance count for partitioned operators; the
	// paper's workers expose 16 task slots each (§5.1.1). Defaults to 1.
	Parallelism int
	// Frequencies estimates events per minute per event type name and
	// drives join reordering (§4.2.2, §5.1.2: "adjust the join order to
	// improve performance"). Types without estimates keep pattern order.
	Frequencies map[string]float64

	// joinCost estimates the output cardinality of a join from its inputs'
	// cardinality estimates (events per minute, post-filter). When set —
	// via WithJoinCost, typically by the optimizer — and the pattern has
	// no negation, the translator builds a greedy cheapest-pair-first join
	// tree (possibly bushy) instead of the ascending-frequency left-deep
	// chain. Unexported so Options stays gob-encodable in distributed job
	// specs; the optimizer pass is a single-process concern.
	joinCost func(left, right float64) float64

	// statsErr is a deferred invalid-statistics error recorded by Advise
	// (PR-4-style fail-fast validation): Translate surfaces it instead of
	// building a mispriced plan from silently clamped statistics.
	statsErr error
}

// WithJoinCost returns the options with a join-output cardinality model
// attached, enabling cost-based greedy join-tree construction in the
// translator. The function receives the two inputs' cardinality estimates
// (events per minute after filtering) and returns the join's.
func (o Options) WithJoinCost(fn func(left, right float64) float64) Options {
	o.joinCost = fn
	return o
}

// CostBased reports whether a join-output cardinality model is attached.
func (o Options) CostBased() bool { return o.joinCost != nil }

func (o Options) String() string {
	var opts []string
	if o.UseIntervalJoin {
		opts = append(opts, "O1")
	}
	if o.UseAggregation {
		opts = append(opts, "O2")
	}
	if o.UsePartitioning {
		opts = append(opts, "O3")
	}
	if o.joinCost != nil {
		opts = append(opts, "CBO")
	}
	if len(opts) == 0 {
		return "FASP"
	}
	return "FASP-" + strings.Join(opts, "+")
}

// Plan is a translated pattern: a logical operator tree ready for physical
// construction by Build.
type Plan struct {
	Pattern *sea.Pattern
	Root    PlanNode
	Opts    Options
}

// PlanNode is a node of the logical operator tree.
type PlanNode interface {
	// Aliases returns the constituent aliases of this node's output, in
	// layout order (iteration aliases repeat per constituent).
	Aliases() []string
	// Describe renders a one-line description for plan explanations.
	Describe() string
	// Kids returns the child nodes.
	Kids() []PlanNode
}

// ScanPlan reads one event type's stream and applies its pushed-down
// selections (filter pushdown over the decomposed pattern, §1).
type ScanPlan struct {
	TypeName string
	Type     event.Type
	Alias    string
	Filters  []sea.BoolExpr
}

// Aliases implements PlanNode.
func (s *ScanPlan) Aliases() []string { return []string{s.Alias} }

// Kids implements PlanNode.
func (s *ScanPlan) Kids() []PlanNode { return nil }

// Describe implements PlanNode.
func (s *ScanPlan) Describe() string {
	if len(s.Filters) == 0 {
		return fmt.Sprintf("Scan %s AS %s", s.TypeName, s.Alias)
	}
	return fmt.Sprintf("Scan %s AS %s WHERE %s", s.TypeName, s.Alias, sea.Conjoin(s.Filters))
}

// OrderPair requires a strict timestamp order between two constituents of a
// join's combined layout — the θ predicate of the sequence mapping.
type OrderPair struct {
	Before, After int // combined layout positions: events[Before].TS < events[After].TS
}

// EquiSpec is a partition-key pair extracted from an equality predicate
// (O3): both sides are hashed on the respective attribute.
type EquiSpec struct {
	LeftPos   int
	LeftAttr  string
	RightPos  int
	RightAttr string
}

// AuxCheck encodes the negated-sequence selection σ ats >= e3.ts (§4.1):
// the annotated T1 constituent's next-occurrence timestamp must not precede
// the following component's earliest constituent.
type AuxCheck struct {
	T1Pos     int
	RightPoss []int // positions of the following component's constituents
}

// JoinPlan composes two sub-plans: a sliding window join by default, an
// interval join under O1. All temporal constraints — the window span check
// and the per-pair order constraints — are part of the θ predicate.
type JoinPlan struct {
	Interval    bool
	Left, Right PlanNode
	// Ordered reports that every left constituent precedes every right
	// constituent (adjacent sequence components): interval joins then use
	// bounds (0, W) instead of (-W, W) (§4.3.1).
	Ordered bool
	Window  sea.Window
	Orders  []OrderPair
	// PairPred is the iteration's consecutive-pair constraint between the
	// last left and the single right constituent, if any.
	PairPred  sea.BoolExpr
	PairAlias string
	// Preds are multi-alias conjuncts first fully bound at this join
	// (combined layout: left aliases then right aliases).
	Preds []sea.BoolExpr
	// Equi is the partition key under O3, nil otherwise.
	Equi *EquiSpec
	// AuxChecks are negated-sequence selections bound at this join.
	AuxChecks []AuxCheck
	// Dedup suppresses this stage's per-window duplicate emissions.
	// Translate sets it on every non-root join: duplicates multiply by
	// ~W/slide per chained stage, so only the final stage's duplicates
	// remain observable (matching the single-join duplicate discussion of
	// §3.1.4 while keeping decomposed chains linear).
	Dedup bool
}

// Aliases implements PlanNode.
func (j *JoinPlan) Aliases() []string {
	return append(append([]string{}, j.Left.Aliases()...), j.Right.Aliases()...)
}

// Kids implements PlanNode.
func (j *JoinPlan) Kids() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Describe implements PlanNode.
func (j *JoinPlan) Describe() string {
	kind := "WindowJoin"
	if j.Interval {
		kind = "IntervalJoin"
	}
	var parts []string
	if j.Ordered {
		parts = append(parts, "ordered")
	}
	if j.Equi != nil {
		parts = append(parts, fmt.Sprintf("partitioned by [%d].%s==[%d].%s", j.Equi.LeftPos, j.Equi.LeftAttr, j.Equi.RightPos, j.Equi.RightAttr))
	}
	if len(j.Preds) > 0 {
		parts = append(parts, fmt.Sprintf("θ: %s", sea.Conjoin(j.Preds)))
	}
	if j.PairPred != nil {
		parts = append(parts, fmt.Sprintf("pairwise: %s", j.PairPred))
	}
	if len(j.AuxChecks) > 0 {
		parts = append(parts, "nseq-selection")
	}
	detail := ""
	if len(parts) > 0 {
		detail = " (" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("%s %s%s", kind, j.Window, detail)
}

// UnionPlan unifies disjunction branches (the ∪ mapping).
type UnionPlan struct {
	Branches []PlanNode
	// All branches share one canonical output schema by construction —
	// the union compatibility the mapping demands (§4.1).
}

// Aliases implements PlanNode: a disjunction match carries one branch's
// constituents; the canonical layout is branch-local, so the union exposes
// no stable alias positions.
func (u *UnionPlan) Aliases() []string { return nil }

// Kids implements PlanNode.
func (u *UnionPlan) Kids() []PlanNode { return u.Branches }

// Describe implements PlanNode.
func (u *UnionPlan) Describe() string { return fmt.Sprintf("Union (%d branches)", len(u.Branches)) }

// AggregatePlan is the O2 mapping of iteration: a sliding window count
// aggregation emitting one approximate result tuple per window with at
// least M relevant events (§4.3.2).
type AggregatePlan struct {
	Scan      *ScanPlan
	M         int
	Unbounded bool
	Window    sea.Window
	Equi      bool // O3: partition by sensor id
}

// Aliases implements PlanNode.
func (a *AggregatePlan) Aliases() []string { return []string{a.Scan.Alias} }

// Kids implements PlanNode.
func (a *AggregatePlan) Kids() []PlanNode { return []PlanNode{a.Scan} }

// Describe implements PlanNode.
func (a *AggregatePlan) Describe() string {
	cmp := "=="
	if a.Unbounded {
		cmp = ">="
	}
	return fmt.Sprintf("WindowAggregate count %s %d %s", cmp, a.M, a.Window)
}

// NextOccurrencePlan wraps a T1 scan with the negated-sequence UDF: its
// output is the T1 stream annotated with the ats attribute (§4.1).
type NextOccurrencePlan struct {
	T1     *ScanPlan
	Neg    *ScanPlan // the negated type's scan, with the blocker's filters
	Window sea.Window
	// EquiT1 holds equality conjuncts correlating the blocker with T1
	// (evaluated inside the UDF).
	EquiT1 []sea.BoolExpr
	// NegAlias is the negated alias (for predicate compilation).
	NegAlias string
}

// Aliases implements PlanNode.
func (n *NextOccurrencePlan) Aliases() []string { return []string{n.T1.Alias} }

// Kids implements PlanNode.
func (n *NextOccurrencePlan) Kids() []PlanNode { return []PlanNode{n.T1, n.Neg} }

// Describe implements PlanNode.
func (n *NextOccurrencePlan) Describe() string {
	return fmt.Sprintf("NextOccurrence ¬%s after %s within %s", n.Neg.TypeName, n.T1.Alias, n.Window)
}

// CEPPlan is the baseline mapping: the whole pattern in one unary NFA
// operator applied to the union of all sources (the FCEP approach the paper
// evaluates against).
type CEPPlan struct {
	Prog    *nfa.Program
	Sources []*ScanPlan // unfiltered: FCEP evaluates all selections inside the NFA
	Keyed   bool
}

// Aliases implements PlanNode.
func (c *CEPPlan) Aliases() []string { return nil }

// Kids implements PlanNode.
func (c *CEPPlan) Kids() []PlanNode {
	out := make([]PlanNode, len(c.Sources))
	for i, s := range c.Sources {
		out[i] = s
	}
	return out
}

// Describe implements PlanNode.
func (c *CEPPlan) Describe() string {
	return fmt.Sprintf("CEP-NFA (%d stages, %s, unary operator on unioned input)", len(c.Prog.Stages), c.Prog.Policy)
}

// Explain renders the plan tree, one node per line.
func (p *Plan) Explain() string {
	var b strings.Builder
	name := p.Pattern.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "-- %s plan for pattern %s\n", p.Opts, name)
	var walk func(n PlanNode, depth int)
	walk = func(n PlanNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, k := range n.Kids() {
			walk(k, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}
