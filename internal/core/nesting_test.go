package core

import (
	"math/rand"
	"testing"

	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// Deeper structural-nesting equivalence cases beyond the main matrix.
func TestDeepNestingEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		types   []string
	}{
		{
			name: "AND of SEQs",
			pattern: `PATTERN AND(SEQ(TEA a, TEB b), SEQ(TEC c, TED d))
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC", "TED"},
		},
		{
			name: "SEQ of ANDs",
			pattern: `PATTERN SEQ(AND(TEA a, TEB b), AND(TEC c, TED d))
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC", "TED"},
		},
		{
			name: "OR of SEQ and AND",
			pattern: `PATTERN OR(SEQ(TEA a, TEB b), AND(TEC c, TED d))
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC", "TED"},
		},
		{
			name: "OR inside AND",
			pattern: `PATTERN AND(TEA a, OR(TEB b, TEC c))
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC"},
		},
		{
			name: "ITER inside SEQ",
			pattern: `PATTERN SEQ(TEA a, ITER(TEV v, 2), TEB b)
				WHERE v[i].value < v[i+1].value
				WITHIN 10 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEV", "TEB"},
		},
		{
			name: "cross predicate over nesting",
			pattern: `PATTERN SEQ(TEA a, AND(TEB b, TEC c))
				WHERE a.value <= b.value AND a.value <= c.value
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEB", "TEC"},
		},
		{
			name: "negation before nested AND",
			pattern: `PATTERN SEQ(TEA a, !TEX x, AND(TEB b, TEC c))
				WITHIN 8 MINUTES SLIDE 1 MINUTE`,
			types: []string{"TEA", "TEX", "TEB", "TEC"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pat := mustPattern(t, tc.pattern)
			for trial := 0; trial < 6; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*13 + 3))
				data := make(map[event.Type][]event.Event)
				var all []event.Event
				for _, tn := range tc.types {
					typ, _ := event.LookupType(tn)
					s := genStream(rng, typ, 6, 20, 1)
					data[typ] = s
					all = append(all, s...)
				}
				oracle := sortedKeys(sea.Evaluate(pat, all))
				for _, opts := range []Options{{}, {UseIntervalJoin: true}} {
					res := runPlan(t, pat, opts, data)
					equalSets(t, tc.name+"/"+opts.String(), oracle, sortedKeys(res.Matches()))
				}
			}
		})
	}
}

// Frequencies-driven reordering must stay correct on nested structures too.
func TestReorderingNestedEquivalence(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(TEA a, AND(TEB b, TEC c), TED d)
		WITHIN 9 MINUTES SLIDE 1 MINUTE`)
	rng := rand.New(rand.NewSource(321))
	data := make(map[event.Type][]event.Event)
	var all []event.Event
	for _, tn := range []string{"TEA", "TEB", "TEC", "TED"} {
		typ, _ := event.LookupType(tn)
		s := genStream(rng, typ, 6, 20, 1)
		data[typ] = s
		all = append(all, s...)
	}
	oracle := sortedKeys(sea.Evaluate(pat, all))
	res := runPlan(t, pat, Options{Frequencies: map[string]float64{
		"TEA": 50, "TEB": 5, "TEC": 1, "TED": 10,
	}}, data)
	equalSets(t, "nested-reorder", oracle, sortedKeys(res.Matches()))
}
