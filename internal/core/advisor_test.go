package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

func TestAdviseEnablesO3ForKeyedPatterns(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WHERE a.id == b.id WITHIN 15 MIN`)
	opts := Advise(pat, nil, 8)
	if !opts.UsePartitioning || opts.Parallelism != 8 {
		t.Fatalf("keyed pattern should enable O3: %+v", opts)
	}
	unkeyed := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)
	if Advise(unkeyed, nil, 8).UsePartitioning {
		t.Fatal("unkeyed pattern must not enable O3")
	}
}

func TestAdviseEnablesO2ForRootIteration(t *testing.T) {
	// Regression: bounded iterations used to get O2 too, silently trading
	// the exact self-join chain for the approximate count aggregation. The
	// aggregation cannot express exact bounds (it checks count >= m or
	// == m per window without constituents), so O2 is advised only where
	// it is mandatory: unbounded (Kleene+) iterations.
	pat := mustPattern(t, `PATTERN ITER(ADV v, 4) WITHIN 15 MIN`)
	if Advise(pat, nil, 1).UseAggregation {
		t.Fatal("bounded iteration must keep the exact self-join mapping, not O2")
	}
	pat = mustPattern(t, `PATTERN ITER(ADV v, 4+) WITHIN 15 MIN`)
	opts := Advise(pat, nil, 1)
	if !opts.UseAggregation {
		t.Fatal("unbounded iteration requires O2")
	}
	// The advised options must actually translate.
	if _, err := Translate(pat, opts); err != nil {
		t.Fatalf("advised options fail translation: %v", err)
	}
	seq := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)
	if Advise(seq, nil, 1).UseAggregation {
		t.Fatal("sequence must not enable O2")
	}
}

func TestAdviseIntervalJoinFrequencyRule(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)

	// Balanced or left-rare: interval join (O1).
	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 10},
		"ADB": {Frequency: 10},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("balanced frequencies should pick O1")
	}
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 1},
		"ADB": {Frequency: 100},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("rare left stream should pick O1")
	}

	// Left floods: sliding window join (the NSEQ observation, §5.2.1).
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADB": {Frequency: 1},
	}, 1)
	if opts.UseIntervalJoin {
		t.Fatal("flooding left stream should avoid O1")
	}

	// Filter selectivity rescues a frequent-but-filtered left stream.
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100, FilterSelectivity: 0.01},
		"ADB": {Frequency: 1},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("heavily filtered left stream should pick O1")
	}

	// Unknown stats default to O1.
	if !Advise(pat, nil, 1).UseIntervalJoin {
		t.Fatal("unknown characteristics should default to O1")
	}
}

// Regression: the O1 frequency rule must judge the join the translator
// actually executes first — the post-reorder leading pair — not the
// pattern-order leading pair (§4.3.1 via §4.2.2).
func TestAdviseIntervalJoinUsesReorderedLeadingPair(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b, ADC c) WITHIN 15 MIN`)
	stats := map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADB": {Frequency: 200},
		"ADC": {Frequency: 1},
	}
	opts := Advise(pat, stats, 1)
	// Reordering joins ADC (1/min) with ADA (100/min) first, and the
	// translator puts the pattern-earlier ADA on the left: 100 > 4*1, so
	// the leading interval join's left floods and O1 must be off. The old
	// rule looked at the pattern pair (ADA, ADB) — 100 <= 4*200 — and
	// wrongly kept O1.
	if opts.UseIntervalJoin {
		t.Fatal("O1 must be judged on the post-reorder leading pair (ADA left, ADC right)")
	}
	// The rule's premise must match the translated plan: the leading join
	// really is ADA ⋈ ADC.
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := plan.Root.(*JoinPlan)
	for {
		l, ok := first.Left.(*JoinPlan)
		if !ok {
			break
		}
		first = l
	}
	ls, lok := first.Left.(*ScanPlan)
	rs, rok := first.Right.(*ScanPlan)
	if !lok || !rok || ls.TypeName != "ADA" || rs.TypeName != "ADC" {
		t.Fatalf("leading join is not ADA ⋈ ADC: %s ⋈ %s", first.Left.Describe(), first.Right.Describe())
	}

	// Conjunctions carry no order, so the cheaper stream stays left and
	// the same statistics keep O1 on.
	and := mustPattern(t, `PATTERN AND(ADA a, ADC c) WITHIN 15 MIN`)
	if !Advise(and, map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADC": {Frequency: 1},
	}, 1).UseIntervalJoin {
		t.Fatal("AND keeps the rare stream left; O1 should stay on")
	}
}

// Regression: invalid statistics used to be silently clamped (any bad
// selectivity priced as 1), mispricing every plan. They must fail fast.
func TestAdviseRejectsInvalidStats(t *testing.T) {
	bad := []map[string]StreamStats{
		{"ADA": {Frequency: 10, FilterSelectivity: 1.5}},
		{"ADA": {Frequency: 10, FilterSelectivity: -0.1}},
		{"ADA": {Frequency: -5}},
		{"ADA": {Frequency: math.NaN()}},
		{"ADA": {Frequency: 10, FilterSelectivity: math.NaN()}},
	}
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)
	for i, stats := range bad {
		if err := ValidateStats(stats); err == nil {
			t.Fatalf("case %d: ValidateStats accepted %+v", i, stats["ADA"])
		}
		if _, err := Translate(pat, Advise(pat, stats, 1)); err == nil {
			t.Fatalf("case %d: Advise→Translate accepted invalid stats %+v", i, stats["ADA"])
		}
	}
	// The zero selectivity means "unknown" and stays valid.
	ok := map[string]StreamStats{"ADA": {Frequency: 10}, "ADB": {Frequency: 1, FilterSelectivity: 0.5}}
	if err := ValidateStats(ok); err != nil {
		t.Fatalf("valid stats rejected: %v", err)
	}
	if _, err := Translate(pat, Advise(pat, ok, 1)); err != nil {
		t.Fatalf("valid stats fail translation: %v", err)
	}
}

func TestAdviseFrequenciesFeedReordering(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b, ADC c) WITHIN 15 MIN`)
	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADB": {Frequency: 1},
		"ADC": {Frequency: 10},
	}, 1)
	if opts.Frequencies["ADA"] != 100 || opts.Frequencies["ADB"] != 1 {
		t.Fatalf("frequencies not forwarded: %v", opts.Frequencies)
	}
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	// b and c join first; a (the flood) last.
	root := plan.Root.(*JoinPlan)
	if scan, ok := root.Left.(*ScanPlan); !ok || scan.TypeName != "ADA" {
		t.Fatalf("flooding stream should join last: %s", root.Left.Describe())
	}
}

// Advised options must preserve semantics end to end.
func TestAdvisedOptionsEquivalent(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(ADA a, ADB b)
		WHERE a.id == b.id AND a.value <= b.value
		WITHIN 10 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("ADA")
	tb, _ := event.LookupType("ADB")
	rngData := func() map[event.Type][]event.Event {
		return map[event.Type][]event.Event{
			ta: mkStream(ta, 40),
			tb: mkStream(tb, 40),
		}
	}
	data := rngData()
	var all []event.Event
	for _, s := range data {
		all = append(all, s...)
	}
	oracle := sortedKeys(sea.Evaluate(pat, all))

	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 2},
		"ADB": {Frequency: 2},
	}, 4)
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	env, res, err := Build(plan, BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	equalSets(t, "advised", oracle, sortedKeys(res.Matches()))
}

func mkStream(typ event.Type, n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{
			Type: typ, ID: int64(i%3 + 1),
			TS:    int64(i) * event.Minute,
			Value: float64((i * 37) % 100),
		}
	}
	return out
}

func TestCompletenessWarning(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN SLIDE 1 MIN`)
	unslid := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN SLIDE 1 MIN`)
	unslid.Window.Slide = 0 // hand-built pattern bypassing sea.Build's defaulting

	cases := []struct {
		name  string
		pat   *sea.Pattern
		freqs map[string]float64
		want  string // "" = complete/no verdict; otherwise a required substring
	}{
		// Slide one minute vs a stream arriving every minute: complete.
		{"boundary complete", pat, map[string]float64{"ADA": 1, "ADB": 1}, ""},
		// A 10-events-per-minute stream under a one-minute slide: incomplete.
		{"fast stream warns", pat, map[string]float64{"ADA": 10, "ADB": 1}, "ADA"},
		// Unknown statistics: no verdict.
		{"no stats", pat, nil, ""},
		{"irrelevant stream", pat, map[string]float64{"Other": 99}, ""},
		// Regression: a stream faster than one event per millisecond used
		// to have its inter-arrival truncated to "0ms" — the warning must
		// keep sub-millisecond precision (60000/100000 = 0.6ms).
		{"sub-millisecond inter-arrival", pat, map[string]float64{"ADA": 100000}, "0.6ms"},
		// Regression: a zero/unset slide used to return "" as if provably
		// complete; the precondition can never hold without a positive
		// slide, so it must warn.
		{"zero slide warns", unslid, map[string]float64{"ADA": 1}, "slide"},
	}
	for _, tc := range cases {
		w := CompletenessWarning(tc.pat, tc.freqs)
		if tc.want == "" && w != "" {
			t.Errorf("%s: unexpected warning: %s", tc.name, w)
		}
		if tc.want != "" {
			if w == "" {
				t.Errorf("%s: expected a warning", tc.name)
			} else if !strings.Contains(w, tc.want) {
				t.Errorf("%s: warning %q lacks %q", tc.name, w, tc.want)
			}
		}
	}
}
