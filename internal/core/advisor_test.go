package core

import (
	"context"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

func TestAdviseEnablesO3ForKeyedPatterns(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WHERE a.id == b.id WITHIN 15 MIN`)
	opts := Advise(pat, nil, 8)
	if !opts.UsePartitioning || opts.Parallelism != 8 {
		t.Fatalf("keyed pattern should enable O3: %+v", opts)
	}
	unkeyed := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)
	if Advise(unkeyed, nil, 8).UsePartitioning {
		t.Fatal("unkeyed pattern must not enable O3")
	}
}

func TestAdviseEnablesO2ForRootIteration(t *testing.T) {
	pat := mustPattern(t, `PATTERN ITER(ADV v, 4) WITHIN 15 MIN`)
	if !Advise(pat, nil, 1).UseAggregation {
		t.Fatal("root iteration should enable O2")
	}
	pat = mustPattern(t, `PATTERN ITER(ADV v, 4+) WITHIN 15 MIN`)
	opts := Advise(pat, nil, 1)
	if !opts.UseAggregation {
		t.Fatal("unbounded iteration requires O2")
	}
	// The advised options must actually translate.
	if _, err := Translate(pat, opts); err != nil {
		t.Fatalf("advised options fail translation: %v", err)
	}
	seq := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)
	if Advise(seq, nil, 1).UseAggregation {
		t.Fatal("sequence must not enable O2")
	}
}

func TestAdviseIntervalJoinFrequencyRule(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN`)

	// Balanced or left-rare: interval join (O1).
	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 10},
		"ADB": {Frequency: 10},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("balanced frequencies should pick O1")
	}
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 1},
		"ADB": {Frequency: 100},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("rare left stream should pick O1")
	}

	// Left floods: sliding window join (the NSEQ observation, §5.2.1).
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADB": {Frequency: 1},
	}, 1)
	if opts.UseIntervalJoin {
		t.Fatal("flooding left stream should avoid O1")
	}

	// Filter selectivity rescues a frequent-but-filtered left stream.
	opts = Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100, FilterSelectivity: 0.01},
		"ADB": {Frequency: 1},
	}, 1)
	if !opts.UseIntervalJoin {
		t.Fatal("heavily filtered left stream should pick O1")
	}

	// Unknown stats default to O1.
	if !Advise(pat, nil, 1).UseIntervalJoin {
		t.Fatal("unknown characteristics should default to O1")
	}
}

func TestAdviseFrequenciesFeedReordering(t *testing.T) {
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b, ADC c) WITHIN 15 MIN`)
	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 100},
		"ADB": {Frequency: 1},
		"ADC": {Frequency: 10},
	}, 1)
	if opts.Frequencies["ADA"] != 100 || opts.Frequencies["ADB"] != 1 {
		t.Fatalf("frequencies not forwarded: %v", opts.Frequencies)
	}
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	// b and c join first; a (the flood) last.
	root := plan.Root.(*JoinPlan)
	if scan, ok := root.Left.(*ScanPlan); !ok || scan.TypeName != "ADA" {
		t.Fatalf("flooding stream should join last: %s", root.Left.Describe())
	}
}

// Advised options must preserve semantics end to end.
func TestAdvisedOptionsEquivalent(t *testing.T) {
	pat := mustPattern(t, `
		PATTERN SEQ(ADA a, ADB b)
		WHERE a.id == b.id AND a.value <= b.value
		WITHIN 10 MINUTES SLIDE 1 MINUTE`)
	ta, _ := event.LookupType("ADA")
	tb, _ := event.LookupType("ADB")
	rngData := func() map[event.Type][]event.Event {
		return map[event.Type][]event.Event{
			ta: mkStream(ta, 40),
			tb: mkStream(tb, 40),
		}
	}
	data := rngData()
	var all []event.Event
	for _, s := range data {
		all = append(all, s...)
	}
	oracle := sortedKeys(sea.Evaluate(pat, all))

	opts := Advise(pat, map[string]StreamStats{
		"ADA": {Frequency: 2},
		"ADB": {Frequency: 2},
	}, 4)
	plan, err := Translate(pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	env, res, err := Build(plan, BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	equalSets(t, "advised", oracle, sortedKeys(res.Matches()))
}

func mkStream(typ event.Type, n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{
			Type: typ, ID: int64(i%3 + 1),
			TS:    int64(i) * event.Minute,
			Value: float64((i * 37) % 100),
		}
	}
	return out
}

func TestCompletenessWarning(t *testing.T) {
	// Slide one minute vs a stream arriving every minute: complete.
	pat := mustPattern(t, `PATTERN SEQ(ADA a, ADB b) WITHIN 15 MIN SLIDE 1 MIN`)
	if w := CompletenessWarning(pat, map[string]float64{"ADA": 1, "ADB": 1}); w != "" {
		t.Fatalf("unexpected warning: %s", w)
	}
	// A 10-events-per-minute stream under a one-minute slide: incomplete.
	if w := CompletenessWarning(pat, map[string]float64{"ADA": 10, "ADB": 1}); w == "" {
		t.Fatal("expected a Theorem 2 warning for the fast stream")
	}
	// Unknown statistics: no verdict.
	if w := CompletenessWarning(pat, nil); w != "" {
		t.Fatalf("warning without statistics: %s", w)
	}
	if w := CompletenessWarning(pat, map[string]float64{"Other": 99}); w != "" {
		t.Fatalf("warning from irrelevant stream: %s", w)
	}
}
