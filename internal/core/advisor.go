package core

import (
	"fmt"

	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// StreamStats describes one input stream's data characteristics, the
// information the paper's future-work section proposes to collect for
// "the automated application of the proposed optimization opportunities"
// (§7). Frequency is in events per minute; FilterSelectivity estimates the
// fraction of events surviving the pattern's pushed-down selections for
// this stream (1 when unknown).
type StreamStats struct {
	Frequency         float64
	FilterSelectivity float64
}

func (s StreamStats) effective() float64 {
	sel := s.FilterSelectivity
	if sel <= 0 || sel > 1 {
		sel = 1
	}
	return s.Frequency * sel
}

// HighFrequencyFactor is the ratio beyond which the first stream counts as
// "significantly more frequent" than the second, the regime where sliding
// window joins outperform interval joins (§4.3.1, Performance).
const HighFrequencyFactor = 4.0

// Advise selects mapping optimizations from the pattern's shape and the
// provided stream statistics, codifying §4.3:
//
//   - O3 is enabled whenever an equi predicate keys the pattern — "Equi
//     Join predicates are always preferable as join keys" (§4.3.3) — with
//     the given parallelism;
//   - O2 is enabled for root-level iterations: aggregation reduces the
//     computational load (§4.3.2) and is mandatory for unbounded ones;
//   - O1 is enabled unless the pattern's first (left-most) stream is
//     significantly more frequent than its successor after filtering —
//     interval joins create content-based windows per left element, so
//     they win when the left stream is the rarer one and lose when it
//     floods (§4.3.1, observed on NSEQ in §5.2.1).
//
// Frequencies also feed the translator's join reordering (§4.2.2). Streams
// missing from stats are treated as unknown, which leans conservative:
// unknown frequencies neither trigger nor suppress O1's frequency rule.
func Advise(p *sea.Pattern, stats map[string]StreamStats, parallelism int) Options {
	opts := Options{Parallelism: parallelism}

	if attr := DetectKeyAttr(p); attr != "" {
		opts.UsePartitioning = true
	}

	if it, ok := p.Root.(*sea.IterNode); ok {
		opts.UseAggregation = true
		_ = it
	}

	opts.UseIntervalJoin = adviseIntervalJoin(p, stats)

	if len(stats) > 0 {
		opts.Frequencies = make(map[string]float64, len(stats))
		for name, s := range stats {
			opts.Frequencies[name] = s.effective()
		}
	}
	return opts
}

// CompletenessWarning checks Theorem 2's precondition: sliding windows
// detect every match only when the slide does not exceed the fastest
// involved stream's inter-arrival time (events arriving faster than the
// slide can straddle pane boundaries unseen when their timestamps are not
// aligned to the slide grid). It returns a human-readable warning, or ""
// when the configuration is provably complete or the statistics are
// insufficient to judge. Interval joins (O1) are content-based and immune.
func CompletenessWarning(p *sea.Pattern, freqs map[string]float64) string {
	if len(freqs) == 0 {
		return ""
	}
	var fastest string
	var maxFreq float64
	for _, l := range p.PositiveLeaves() {
		if f, ok := freqs[l.TypeName]; ok && f > maxFreq {
			maxFreq, fastest = f, l.TypeName
		}
	}
	if maxFreq == 0 {
		return ""
	}
	interArrival := event.Time(float64(event.Minute) / maxFreq)
	if p.Window.Slide <= interArrival {
		return ""
	}
	return fmt.Sprintf(
		"window slide %dms exceeds the inter-arrival time %dms of stream %s; "+
			"Theorem 2 requires slide <= the fastest stream's inter-arrival for "+
			"complete detection (use a smaller SLIDE or optimization O1)",
		p.Window.Slide, interArrival, fastest)
}

// adviseIntervalJoin applies the §4.3.1 frequency rule to the pattern's
// leading stream pair.
func adviseIntervalJoin(p *sea.Pattern, stats map[string]StreamStats) bool {
	leaves := p.PositiveLeaves()
	if len(leaves) < 2 {
		// Single-type patterns (iterations): the left side of every self
		// join is the same stream — interval joins always apply.
		return true
	}
	first, ok1 := stats[leaves[0].TypeName]
	second, ok2 := stats[leaves[1].TypeName]
	if !ok1 || !ok2 || second.effective() == 0 {
		return true // unknown characteristics: default to O1
	}
	return first.effective() <= HighFrequencyFactor*second.effective()
}
