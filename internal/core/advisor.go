package core

import (
	"fmt"
	"math"
	"sort"

	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// StreamStats describes one input stream's data characteristics, the
// information the paper's future-work section proposes to collect for
// "the automated application of the proposed optimization opportunities"
// (§7). Frequency is in events per minute; FilterSelectivity estimates the
// fraction of events surviving the pattern's pushed-down selections for
// this stream (0 when unknown, treated as 1).
type StreamStats struct {
	Frequency         float64
	FilterSelectivity float64
}

// validate rejects statistics that would silently misprice every plan:
// negative or NaN frequencies, and selectivities outside (0, 1] (the zero
// value means "unknown" and is accepted).
func (s StreamStats) validate(name string) error {
	if math.IsNaN(s.Frequency) || s.Frequency < 0 {
		return fmt.Errorf("core: invalid stream statistics for %q: frequency %v must be a non-negative number", name, s.Frequency)
	}
	sel := s.FilterSelectivity
	if math.IsNaN(sel) || sel < 0 || sel > 1 {
		return fmt.Errorf("core: invalid stream statistics for %q: filter selectivity %v must be in [0, 1] (0 = unknown)", name, sel)
	}
	return nil
}

// ValidateStats checks every stream's statistics, failing fast on values
// that would silently corrupt cost estimates (negative frequencies, NaNs,
// selectivities outside [0, 1]). A zero FilterSelectivity means "unknown"
// and is valid.
func ValidateStats(stats map[string]StreamStats) error {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic first error
	for _, name := range names {
		if err := stats[name].validate(name); err != nil {
			return err
		}
	}
	return nil
}

func (s StreamStats) effective() float64 {
	sel := s.FilterSelectivity
	if sel == 0 {
		// The zero value is "unknown": price the stream unfiltered. Invalid
		// selectivities (< 0, > 1, NaN) are rejected by ValidateStats on
		// the Advise path instead of being clamped here.
		sel = 1
	}
	return s.Frequency * sel
}

// HighFrequencyFactor is the ratio beyond which the first stream counts as
// "significantly more frequent" than the second, the regime where sliding
// window joins outperform interval joins (§4.3.1, Performance).
const HighFrequencyFactor = 4.0

// Advise selects mapping optimizations from the pattern's shape and the
// provided stream statistics, codifying §4.3:
//
//   - O3 is enabled whenever an equi predicate keys the pattern — "Equi
//     Join predicates are always preferable as join keys" (§4.3.3) — with
//     the given parallelism;
//   - O2 is enabled for unbounded root-level iterations, where the window
//     count aggregation is mandatory (the self-join mapping supports exact
//     m only, §4.3.2). Bounded iterations keep the exact self-join chain:
//     the aggregation is approximate and cannot express Kleene*, so it is
//     never forced where the exact mapping exists;
//   - O1 is enabled unless the leading join's left stream is significantly
//     more frequent than its right after filtering — interval joins create
//     content-based windows per left element, so they win when the left
//     stream is the rarer one and lose when it floods (§4.3.1, observed on
//     NSEQ in §5.2.1). The rule evaluates the pair the translator actually
//     joins first, i.e. after §4.2.2 frequency reordering, not the
//     pattern-order pair.
//
// Frequencies also feed the translator's join reordering (§4.2.2). Streams
// missing from stats are treated as unknown, which leans conservative:
// unknown frequencies neither trigger nor suppress O1's frequency rule.
// Invalid statistics (negative or NaN frequencies, selectivities outside
// [0, 1]) are not silently clamped: the error is recorded on the returned
// Options and surfaces at Translate, PR-4-style fail-fast validation.
func Advise(p *sea.Pattern, stats map[string]StreamStats, parallelism int) Options {
	opts := Options{Parallelism: parallelism}
	if err := ValidateStats(stats); err != nil {
		opts.statsErr = err
		return opts
	}

	if attr := DetectKeyAttr(p); attr != "" {
		opts.UsePartitioning = true
	}

	if it, ok := p.Root.(*sea.IterNode); ok {
		// O2 only where it is mandatory: the aggregation is approximate
		// (one count tuple per window, no constituent values), so bounded
		// iterations keep the exact θ self-join chain.
		opts.UseAggregation = it.Unbounded
	}

	opts.UseIntervalJoin = adviseIntervalJoin(p, stats)

	if len(stats) > 0 {
		opts.Frequencies = make(map[string]float64, len(stats))
		for name, s := range stats {
			opts.Frequencies[name] = s.effective()
		}
	}
	return opts
}

// CompletenessWarning checks Theorem 2's precondition: sliding windows
// detect every match only when the slide does not exceed the fastest
// involved stream's inter-arrival time (events arriving faster than the
// slide can straddle pane boundaries unseen when their timestamps are not
// aligned to the slide grid). It returns a human-readable warning, or ""
// when the configuration is provably complete or the statistics are
// insufficient to judge. Interval joins (O1) are content-based and immune.
//
// A zero or negative slide (a pattern built without sea.Build's
// defaulting) makes the precondition unjudgeable, never provably complete,
// so it warns instead of silently returning "". Inter-arrival times are
// compared in sub-millisecond precision: a stream faster than one event
// per millisecond must not truncate to a zero inter-arrival.
func CompletenessWarning(p *sea.Pattern, freqs map[string]float64) string {
	if len(freqs) == 0 {
		return ""
	}
	var fastest string
	var maxFreq float64
	for _, l := range p.PositiveLeaves() {
		if f, ok := freqs[l.TypeName]; ok && f > maxFreq {
			maxFreq, fastest = f, l.TypeName
		}
	}
	if maxFreq == 0 {
		return ""
	}
	if p.Window.Slide <= 0 {
		return fmt.Sprintf(
			"window slide is %dms (unset or non-positive); Theorem 2's completeness "+
				"precondition cannot hold without a positive slide — build the pattern "+
				"through sea.Build/Parse or set SLIDE explicitly",
			p.Window.Slide)
	}
	interArrival := float64(event.Minute) / maxFreq // ms, sub-ms precision kept
	if float64(p.Window.Slide) <= interArrival {
		return ""
	}
	return fmt.Sprintf(
		"window slide %dms exceeds the inter-arrival time %.6gms of stream %s; "+
			"Theorem 2 requires slide <= the fastest stream's inter-arrival for "+
			"complete detection (use a smaller SLIDE or optimization O1)",
		p.Window.Slide, interArrival, fastest)
}

// adviseIntervalJoin applies the §4.3.1 frequency rule to the stream pair
// the translator joins first. With frequency estimates (and no negation,
// which pins pattern order) the translator reorders joins cheapest-first
// (§4.2.2), so the physically leading pair is the two least frequent
// streams — not the pattern-order pair. Within that pair the translator
// still puts the pattern-earlier stream on the left (ordered interval
// joins need it), so the rule must check the post-reorder left against the
// post-reorder right.
func adviseIntervalJoin(p *sea.Pattern, stats map[string]StreamStats) bool {
	leaves := p.PositiveLeaves()
	if len(leaves) < 2 {
		// Single-type patterns (iterations): the left side of every self
		// join is the same stream — interval joins always apply.
		return true
	}

	// Mirror the translator's ordering: ascending effective frequency,
	// stable, with missing stats sorting first (freq 0) — but only when
	// reordering will actually run (stats present, no negated leaf).
	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	if len(stats) > 0 && !hasNegatedLeaf(p) {
		eff := func(i int) float64 {
			s, ok := stats[leaves[order[i]].TypeName]
			if !ok {
				return 0
			}
			return s.effective()
		}
		sort.SliceStable(order, func(a, b int) bool { return eff(a) < eff(b) })
	}

	// The leading pair joins with the pattern-earlier stream on the left
	// when the pair is sequence-ordered; conjunction pairs carry no order,
	// so the cheaper stream stays left.
	li, ri := order[0], order[1]
	if _, isAnd := p.Root.(*sea.AndNode); !isAnd && ri < li {
		li, ri = ri, li
	}
	left, ok1 := stats[leaves[li].TypeName]
	right, ok2 := stats[leaves[ri].TypeName]
	if !ok1 || !ok2 || right.effective() == 0 {
		return true // unknown characteristics: default to O1
	}
	return left.effective() <= HighFrequencyFactor*right.effective()
}

func hasNegatedLeaf(p *sea.Pattern) bool {
	for _, l := range p.Leaves() {
		if l.Negated {
			return true
		}
	}
	return false
}
