package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/chaos"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/supervise"
)

// SuperviseConfig configures supervised execution: the restart policy, an
// optional fault injector, and the dead-letter queue for poison records.
type SuperviseConfig struct {
	// Policy governs restarts after isolated operator panics. A zero policy
	// allows no restart — pass supervise.DefaultPolicy() for the defaults.
	Policy supervise.Policy
	// Chaos arms deterministic fault-injection points in the engine; the
	// injector is shared across restarts, so its hit counters stay
	// monotonic and once-only faults do not re-fire after recovery.
	Chaos *chaos.Injector
	// DLQ receives poison records quarantined by the supervisor; nil
	// allocates a fresh in-memory queue (returned in the result).
	DLQ *supervise.DLQ
	// OnAttempt, when set, observes each freshly built environment before
	// it executes: attempt 0 is the initial run, higher attempts are
	// restarts replaying from the latest checkpoint.
	OnAttempt func(attempt int, env *asp.Environment, results []*asp.Results)
}

// SupervisedRun reports a supervised execution.
type SupervisedRun struct {
	// Results holds each plan's sink from the final (successful) attempt,
	// in plan order; nil when the job ultimately failed.
	Results []*asp.Results
	// Restarts is the number of restarts performed.
	Restarts int
	// DLQ is the dead-letter queue, holding every poison record dropped
	// from the stream.
	DLQ *supervise.DLQ
}

// RunSupervised builds and executes the plans under a restart policy: an
// operator panic is isolated into a structured failure, the graph is torn
// down, rebuilt, restored from the latest aligned checkpoint and replayed —
// up to the policy's restart budget, with exponential backoff and jitter
// between attempts. A record whose processing keeps crashing the job is
// quarantined after Policy.PoisonThreshold failures and routed to the
// dead-letter queue on the next replay instead of crashing the job again.
//
// When the engine configuration carries no CheckpointSpec, an in-memory
// store with a short trigger interval is installed so restarts have a
// checkpoint to resume from; a configured spec is used as-is, with Restore
// forced on for restart attempts.
func RunSupervised(ctx context.Context, plans []*Plan, bc BuildConfig, sc SuperviseConfig) (*SupervisedRun, error) {
	engine := bc.Engine
	if sc.Chaos != nil {
		engine.Chaos = sc.Chaos
	}
	dlq := sc.DLQ
	if dlq == nil {
		dlq = &supervise.DLQ{}
	}
	reg := engine.Metrics // nil-safe: Record* methods no-op

	// Surface ring-buffer evictions on /metrics without clobbering a
	// user-installed observer.
	userDropped := dlq.OnDropped
	dlq.OnDropped = func(l supervise.Letter) {
		reg.RecordDeadLetterDropped()
		if userDropped != nil {
			userDropped(l)
		}
	}

	// Poison-record plumbing: the supervisor attributes repeated failures
	// to a record key and quarantines it at the failing node; the engine
	// then drops the record on replay and this hook turns each drop into a
	// dead letter.
	q := asp.NewQuarantine()
	engine.Quarantine = q
	var mu sync.Mutex
	failuresByKey := map[string]int{}
	q.OnDrop = func(node string, instance int, key, summary string) {
		mu.Lock()
		n := failuresByKey[key]
		mu.Unlock()
		reg.RecordDeadLetter()
		dlq.Add(supervise.Letter{
			Node: node, Instance: instance, Key: key, Summary: summary,
			Failures: n, At: time.Now(),
		})
	}

	var spec asp.CheckpointSpec
	if engine.Checkpoint != nil {
		spec = *engine.Checkpoint
	} else {
		spec.Store = checkpoint.NewMemStore()
		spec.Interval = 20 * time.Millisecond
	}
	userRestore := spec.Restore

	sup := &supervise.Supervisor{
		Policy: sc.Policy,
		OnRestart: func(restart int, cause error, delay time.Duration) {
			reg.RecordRestart()
		},
		OnPoison: func(key string, failures int, cause error) {
			var f *asp.OperatorFailure
			if !errors.As(cause, &f) {
				return
			}
			mu.Lock()
			failuresByKey[key] = failures
			mu.Unlock()
			q.Add(f.Node, key)
		},
	}

	out := &SupervisedRun{DLQ: dlq}
	restarts, err := sup.Run(ctx, func(ctx context.Context, attempt int) error {
		attemptBC := bc
		attemptBC.Engine = engine
		attemptSpec := spec
		attemptSpec.Restore = userRestore || attempt > 0
		attemptBC.Engine.Checkpoint = &attemptSpec
		env, results, err := BuildMulti(plans, attemptBC)
		if err != nil {
			return err
		}
		if sc.OnAttempt != nil {
			sc.OnAttempt(attempt, env, results)
		}
		if runErr := env.Execute(ctx); runErr != nil {
			reg.RecordFailure(runErr.Error())
			return runErr
		}
		out.Results = results
		return nil
	})
	out.Restarts = restarts
	return out, err
}
