package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FileStore persists snapshots as one gob file per checkpoint under a run
// directory, surviving process restarts. Writes go to a temporary file
// first and are renamed into place, so a crash mid-save never leaves a
// truncated snapshot behind: the store only ever contains complete
// checkpoints, which is the invariant recovery depends on.
type FileStore struct {
	dir  string
	keep int
	mu   sync.Mutex
}

const fileStoreExt = ".ckpt"

// NewFileStore opens (creating if needed) a file-backed store rooted at the
// given run directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's run directory.
func (f *FileStore) Dir() string { return f.dir }

// WithRetention bounds the store to the n most recent checkpoints: each Save
// prunes older snapshot files after the new one is in place, so the latest
// checkpoint is always complete before anything is deleted. n <= 0 keeps
// everything. Returns the store for chaining.
func (f *FileStore) WithRetention(n int) *FileStore {
	f.mu.Lock()
	f.keep = n
	f.mu.Unlock()
	return f
}

func (f *FileStore) path(id int64) string {
	return filepath.Join(f.dir, fmt.Sprintf("%016d%s", id, fileStoreExt))
}

// Save implements Store.
func (f *FileStore) Save(s *Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encoding snapshot %d: %w", s.ID, err)
	}
	tmp, err := os.CreateTemp(f.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: saving snapshot %d: %w", s.ID, err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: writing snapshot %d: %w", s.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: writing snapshot %d: %w", s.ID, err)
	}
	if err := os.Rename(tmp.Name(), f.path(s.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: publishing snapshot %d: %w", s.ID, err)
	}
	// Retention: prune only after the new snapshot is durably in place, and
	// never prune the file just written even if IDs raced with external
	// cleanup. A failed removal is ignored — stale files are re-pruned by
	// the next Save.
	if f.keep > 0 {
		if ids, err := f.idsLocked(); err == nil && len(ids) > f.keep {
			excess := len(ids) - f.keep
			for _, id := range ids {
				if excess == 0 {
					break
				}
				if id == s.ID {
					continue
				}
				os.Remove(f.path(id))
				excess--
			}
		}
	}
	return nil
}

// Load implements Store.
func (f *FileStore) Load(id int64) (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err := os.ReadFile(f.path(id))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: no snapshot %d: %w", id, err)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding snapshot %d: %w", id, err)
	}
	return &s, nil
}

// Latest implements Store.
func (f *FileStore) Latest() (*Snapshot, error) {
	ids, err := f.IDs()
	if err != nil || len(ids) == 0 {
		return nil, err
	}
	return f.Load(ids[len(ids)-1])
}

// IDs implements Store.
func (f *FileStore) IDs() ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.idsLocked()
}

// idsLocked lists the stored snapshot IDs; the caller holds f.mu.
func (f *FileStore) idsLocked() ([]int64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing store: %w", err)
	}
	var ids []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, fileStoreExt) {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimSuffix(name, fileStoreExt), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
