package checkpoint

import (
	"reflect"
	"testing"
	"time"
)

func testSnapshot(id int64) *Snapshot {
	return &Snapshot{
		ID:          id,
		Fingerprint: "0:src/1;1:op/2;",
		Tasks: map[string][]byte{
			"0:src/1": []byte("offset"),
			"1:op/2":  []byte("state"),
			"2:sink":  nil,
		},
	}
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	if latest, err := s.Latest(); err != nil || latest != nil {
		t.Fatalf("empty store Latest = %v, %v; want nil, nil", latest, err)
	}
	for _, id := range []int64{3, 1, 2} {
		if err := s.Save(testSnapshot(id)); err != nil {
			t.Fatalf("Save(%d): %v", id, err)
		}
	}
	ids, err := s.IDs()
	if err != nil || !reflect.DeepEqual(ids, []int64{1, 2, 3}) {
		t.Fatalf("IDs = %v, %v; want [1 2 3]", ids, err)
	}
	got, err := s.Load(2)
	if err != nil {
		t.Fatalf("Load(2): %v", err)
	}
	want := testSnapshot(2)
	if got.ID != want.ID || got.Fingerprint != want.Fingerprint {
		t.Fatalf("Load(2) header = %+v; want %+v", got, want)
	}
	if string(got.Tasks["1:op/2"]) != "state" {
		t.Fatalf("Load(2) task state = %q", got.Tasks["1:op/2"])
	}
	latest, err := s.Latest()
	if err != nil || latest == nil || latest.ID != 3 {
		t.Fatalf("Latest = %v, %v; want ID 3", latest, err)
	}
	if _, err := s.Load(99); err == nil {
		t.Fatal("Load(99) succeeded; want error")
	}
	if got.Bytes() != int64(len("offset")+len("state")) {
		t.Fatalf("Bytes = %d", got.Bytes())
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir() + "/run")
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(testSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, err := reopened.Latest()
	if err != nil || latest == nil || latest.ID != 7 {
		t.Fatalf("reopened Latest = %v, %v; want ID 7", latest, err)
	}
}

func TestCoordinatorCompletes(t *testing.T) {
	store := NewMemStore()
	c := NewCoordinator(store, "fp", []string{"a", "b"}, 0)
	id, ok := c.Begin()
	if !ok || id != 1 {
		t.Fatalf("Begin = %d, %v; want 1, true", id, ok)
	}
	c.Ack(id, "a", []byte("A"), time.Millisecond)
	if c.Completed() != 0 {
		t.Fatal("checkpoint completed before all acks")
	}
	c.Ack(id, "b", []byte("B"), 2*time.Millisecond)
	if c.Completed() != 1 {
		t.Fatalf("Completed = %d; want 1", c.Completed())
	}
	snap, err := store.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.Tasks["a"]) != "A" || string(snap.Tasks["b"]) != "B" {
		t.Fatalf("snapshot tasks = %v", snap.Tasks)
	}
	stats := c.Stats()
	if len(stats) != 1 || stats[0].ID != 1 || stats[0].Tasks != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].AlignPause != 2*time.Millisecond {
		t.Fatalf("AlignPause = %v; want max over acks", stats[0].AlignPause)
	}
}

func TestCoordinatorSingleInFlight(t *testing.T) {
	c := NewCoordinator(NewMemStore(), "fp", []string{"a"}, 0)
	id, ok := c.Begin()
	if !ok {
		t.Fatal("first Begin refused")
	}
	if _, ok := c.Begin(); ok {
		t.Fatal("second Begin accepted while first is pending")
	}
	c.Ack(id, "a", nil, 0)
	if id2, ok := c.Begin(); !ok || id2 != id+1 {
		t.Fatalf("Begin after completion = %d, %v; want %d, true", id2, ok, id+1)
	}
}

func TestCoordinatorFinishedTasksAutoAck(t *testing.T) {
	c := NewCoordinator(NewMemStore(), "fp", []string{"a", "b"}, 0)
	c.FinishTask("a", []byte("final-a"))
	id, ok := c.Begin()
	if !ok {
		t.Fatal("Begin refused")
	}
	c.Ack(id, "b", []byte("B"), 0)
	if c.Completed() != id {
		t.Fatal("finished task did not auto-ack")
	}
	// With every task finished, a new checkpoint completes instantly.
	c.FinishTask("b", nil)
	id2, ok := c.Begin()
	if !ok || c.Completed() != id2 {
		t.Fatalf("all-finished Begin: id %d ok %v completed %d", id2, ok, c.Completed())
	}
}

func TestCoordinatorPrefersAckOverFinalState(t *testing.T) {
	store := NewMemStore()
	c := NewCoordinator(store, "fp", []string{"a", "b"}, 0)
	id, _ := c.Begin()
	c.Ack(id, "a", []byte("at-barrier"), 0)
	// Task a finishes after acking; its barrier-time state must win.
	c.FinishTask("a", []byte("final"))
	c.Ack(id, "b", nil, 0)
	snap, err := store.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.Tasks["a"]) != "at-barrier" {
		t.Fatalf("task a state = %q; want ack state", snap.Tasks["a"])
	}
}

func TestCoordinatorDropsStaleAck(t *testing.T) {
	c := NewCoordinator(NewMemStore(), "fp", []string{"a"}, 5)
	id, _ := c.Begin()
	if id != 6 {
		t.Fatalf("Begin after base 5 = %d; want 6", id)
	}
	c.Ack(99, "a", nil, 0) // stale: must not complete checkpoint 6
	if c.Completed() != 5 {
		t.Fatalf("Completed = %d; want base 5", c.Completed())
	}
	c.Ack(6, "a", nil, 0)
	if c.Completed() != 6 {
		t.Fatalf("Completed = %d; want 6", c.Completed())
	}
}

func TestFileStoreRetention(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs.WithRetention(3)
	for id := int64(1); id <= 7; id++ {
		if err := fs.Save(testSnapshot(id)); err != nil {
			t.Fatalf("Save(%d): %v", id, err)
		}
	}
	ids, err := fs.IDs()
	if err != nil || !reflect.DeepEqual(ids, []int64{5, 6, 7}) {
		t.Fatalf("IDs after retention = %v, %v; want [5 6 7]", ids, err)
	}
	// Pruned snapshots are gone; retained ones still load.
	if _, err := fs.Load(4); err == nil {
		t.Fatal("Load(4) succeeded after pruning")
	}
	if snap, err := fs.Load(5); err != nil || snap.ID != 5 {
		t.Fatalf("Load(5) = %v, %v", snap, err)
	}
	latest, err := fs.Latest()
	if err != nil || latest == nil || latest.ID != 7 {
		t.Fatalf("Latest = %v, %v; want ID 7", latest, err)
	}
	// Out-of-order save of an old ID must never prune the newest snapshot.
	if err := fs.Save(testSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	ids, _ = fs.IDs()
	if len(ids) != 3 || ids[len(ids)-1] != 7 || ids[0] != 2 {
		t.Fatalf("IDs after out-of-order save = %v; want 3 snapshots keeping newest 7 and just-saved 2", ids)
	}
}

func TestFileStoreNoRetentionUnbounded(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 5; id++ {
		if err := fs.Save(testSnapshot(id)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := fs.IDs()
	if err != nil || len(ids) != 5 {
		t.Fatalf("IDs = %v, %v; want all 5 without retention", ids, err)
	}
}
