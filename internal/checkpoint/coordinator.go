package checkpoint

import (
	"sync"
	"time"
)

// Stat describes one completed checkpoint, for overhead reporting: the
// trigger-to-complete duration, the worst per-instance alignment stall, and
// the total serialized state size.
type Stat struct {
	ID          int64
	CompletedAt time.Time
	// Duration is the wall time from trigger to global completion.
	Duration time.Duration
	// AlignPause is the maximum barrier-alignment stall any single
	// operator instance reported: the time between its first and last
	// input barrier, during which records from already-aligned senders
	// were stashed instead of processed.
	AlignPause time.Duration
	// Bytes is the total serialized state across all tasks.
	Bytes int64
	// Tasks is the number of task acknowledgements folded into the
	// snapshot (finished tasks contribute their final state).
	Tasks int
}

// Coordinator drives the checkpoint protocol: it assigns checkpoint IDs,
// collects per-task acknowledgements carrying serialized state, and marks a
// checkpoint complete — persisting it to the store — only once every
// expected task has either acknowledged the checkpoint or finished.
//
// Finished tasks (exhausted sources, closed operators) auto-acknowledge all
// later checkpoints with their final state: a source that ended before
// barrier n was injected contributes its end-of-stream offset, which is
// consistent because every downstream operator treats the source's
// end-of-stream marker as an implicit barrier for all future checkpoints.
// At most one checkpoint is in flight at a time.
type Coordinator struct {
	// OnError, when set, receives store failures (disk full, ...); the
	// engine wires it to abort the run.
	OnError func(error)
	// OnComplete, when set, receives the Stat of every completed checkpoint
	// — the engine wires it to the tracing and metrics planes. Called with
	// the coordinator's lock held: the callback must not call back into the
	// coordinator.
	OnComplete func(Stat)

	mu          sync.Mutex
	store       Store
	fingerprint string
	expected    []string
	finished    map[string][]byte
	nextID      int64
	completed   int64
	pending     *pendingCheckpoint
	stats       []Stat
}

// Coordinator is the canonical AckSink: local runs acknowledge directly.
var _ AckSink = (*Coordinator)(nil)

type pendingCheckpoint struct {
	id       int64
	begun    time.Time
	acks     map[string][]byte
	maxPause time.Duration
}

// NewCoordinator creates a coordinator expecting acknowledgements from the
// given task IDs. base is the ID of the restored snapshot (0 for a fresh
// run); new checkpoints continue the sequence above it.
func NewCoordinator(store Store, fingerprint string, tasks []string, base int64) *Coordinator {
	return &Coordinator{
		store:       store,
		fingerprint: fingerprint,
		expected:    append([]string(nil), tasks...),
		finished:    make(map[string][]byte),
		nextID:      base + 1,
		completed:   base,
	}
}

// Begin starts the next checkpoint and returns its ID. It refuses (ok ==
// false) while another checkpoint is still in flight, bounding the protocol
// to one concurrent checkpoint.
func (c *Coordinator) Begin() (id int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending != nil {
		return 0, false
	}
	id = c.nextID
	c.nextID++
	c.pending = &pendingCheckpoint{id: id, begun: time.Now(), acks: make(map[string][]byte)}
	c.maybeCompleteLocked()
	return id, true
}

// Ack records one task's snapshot for the in-flight checkpoint. pause is
// the task's barrier-alignment stall. Acks for non-pending IDs are dropped
// (they belong to a checkpoint aborted by a restart).
func (c *Coordinator) Ack(id int64, task string, state []byte, pause time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil || c.pending.id != id {
		return
	}
	c.pending.acks[task] = state
	if pause > c.pending.maxPause {
		c.pending.maxPause = pause
	}
	c.maybeCompleteLocked()
}

// FinishTask marks a task as terminated with its final state; it counts as
// an acknowledgement for the in-flight and all future checkpoints.
func (c *Coordinator) FinishTask(task string, state []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finished[task] = state
	c.maybeCompleteLocked()
}

// maybeCompleteLocked assembles and persists the pending checkpoint once
// every expected task has acked or finished. A task that acked the pending
// checkpoint and then finished contributes its ack — the state at barrier
// time — not its final state.
func (c *Coordinator) maybeCompleteLocked() {
	p := c.pending
	if p == nil {
		return
	}
	tasks := make(map[string][]byte, len(c.expected))
	for _, task := range c.expected {
		if st, ok := p.acks[task]; ok {
			tasks[task] = st
			continue
		}
		st, ok := c.finished[task]
		if !ok {
			return // still waiting on this task
		}
		tasks[task] = st
	}
	snap := &Snapshot{ID: p.id, Fingerprint: c.fingerprint, Tasks: tasks}
	c.pending = nil
	c.completed = p.id
	st := Stat{
		ID:          p.id,
		CompletedAt: time.Now(),
		Duration:    time.Since(p.begun),
		AlignPause:  p.maxPause,
		Bytes:       snap.Bytes(),
		Tasks:       len(tasks),
	}
	c.stats = append(c.stats, st)
	if c.OnComplete != nil {
		c.OnComplete(st)
	}
	if err := c.store.Save(snap); err != nil && c.OnError != nil {
		c.OnError(err)
	}
}

// Completed returns the highest completed checkpoint ID.
func (c *Coordinator) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Stats returns the completed-checkpoint statistics in completion order.
func (c *Coordinator) Stats() []Stat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Stat, len(c.stats))
	copy(out, c.stats)
	return out
}
