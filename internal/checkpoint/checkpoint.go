// Package checkpoint implements the aligned-barrier checkpointing and
// recovery subsystem of the engine — the fault-tolerance mechanism that
// makes Flink-class stream processors production-viable and that the paper
// implicitly relies on when it argues CEP patterns should run as pipelines
// of stateful ASP operators (§2, "Processing Model"). Sources periodically
// inject barrier records into their streams; every operator instance aligns
// barriers across its input senders, snapshots its state, acknowledges the
// checkpoint to a coordinator and forwards the barrier downstream. A
// checkpoint is complete — and only then durable — once every operator
// instance of the dataflow has acknowledged it.
//
// The package is engine-agnostic: tasks are identified by opaque strings
// and operator state is opaque bytes, so the coordinator and stores know
// nothing about the asp package (which imports this one, not vice versa).
package checkpoint

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Snapshot is one complete, self-contained checkpoint: the serialized state
// of every task (operator instance or source instance) of a dataflow at a
// consistent cut. Source tasks record their replay offsets as state, which
// is what lets recovery resume the streams exactly at the snapshot point.
type Snapshot struct {
	// ID is the checkpoint sequence number, strictly increasing per run
	// and continued across restores.
	ID int64
	// Fingerprint describes the graph shape (node names and parallelism);
	// restoring into a differently shaped graph is refused.
	Fingerprint string
	// Tasks maps task IDs to serialized operator state; stateless tasks
	// store nil.
	Tasks map[string][]byte
}

// Bytes returns the total serialized state size of the snapshot.
func (s *Snapshot) Bytes() int64 {
	var n int64
	for _, st := range s.Tasks {
		n += int64(len(st))
	}
	return n
}

// AckSink receives the per-task acknowledgements of the checkpoint
// protocol. Coordinator implements it; distributed workers substitute a
// forwarder that relays acknowledgements over the network to the process
// hosting the coordinator, so operator instances never know whether their
// coordinator is local or remote.
type AckSink interface {
	// Ack records one task's snapshot for the in-flight checkpoint.
	Ack(id int64, task string, state []byte, pause time.Duration)
	// FinishTask marks a task as terminated with its final state.
	FinishTask(task string, state []byte)
}

// Store persists completed snapshots. Implementations keep every snapshot
// they are given (versioned history), so recovery can pick either the
// latest or a specific checkpoint.
type Store interface {
	// Save persists a complete snapshot.
	Save(s *Snapshot) error
	// Load returns the snapshot with the given ID, or an error when absent.
	Load(id int64) (*Snapshot, error)
	// Latest returns the snapshot with the highest ID, or (nil, nil) when
	// the store is empty.
	Latest() (*Snapshot, error)
	// IDs returns the stored checkpoint IDs in ascending order.
	IDs() ([]int64, error)
}

// MemStore is an in-memory Store, used by tests and benchmark runs that
// only need recovery within one process lifetime.
type MemStore struct {
	mu    sync.Mutex
	snaps map[int64]*Snapshot
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: make(map[int64]*Snapshot)}
}

// Save implements Store.
func (m *MemStore) Save(s *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[s.ID] = s
	return nil
}

// Load implements Store.
func (m *MemStore) Load(id int64) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[id]
	if !ok {
		return nil, fmt.Errorf("checkpoint: no snapshot %d", id)
	}
	return s, nil
}

// Latest implements Store.
func (m *MemStore) Latest() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *Snapshot
	for _, s := range m.snaps {
		if best == nil || s.ID > best.ID {
			best = s
		}
	}
	return best, nil
}

// IDs implements Store.
func (m *MemStore) IDs() ([]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int64, 0, len(m.snaps))
	for id := range m.snaps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
