package optimizer

import (
	"fmt"
	"math"
	"strings"

	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/sea"
)

// Measure derives exact StreamStats for every event type the pattern
// references from recorded streams: Frequency is events per minute of
// event-time span, FilterSelectivity is the fraction of events passing the
// pattern's pushed-down single-alias selections for that type. This is the
// offline statistics collector of §7's envisioned optimizer; ObservedStats
// is its online counterpart.
func Measure(p *sea.Pattern, data map[event.Type][]event.Event) (map[string]core.StreamStats, error) {
	preds, err := scanPredicates(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]core.StreamStats)
	for _, l := range p.Leaves() {
		if _, done := out[l.TypeName]; done {
			continue
		}
		events := data[l.Type]
		if len(events) == 0 {
			continue
		}
		minTS, maxTS := events[0].TS, events[0].TS
		for _, e := range events {
			if e.TS < minTS {
				minTS = e.TS
			}
			if e.TS > maxTS {
				maxTS = e.TS
			}
		}
		span := float64(maxTS-minTS+event.Minute) / float64(event.Minute)
		st := core.StreamStats{Frequency: float64(len(events)) / span}
		// A stream feeding several aliases is priced at its heaviest use:
		// the largest per-alias pass fraction (usually one alias per type).
		var best float64
		var filtered bool
		for _, la := range typeAliases(p, l.TypeName) {
			pred, ok := preds[la]
			if !ok {
				best = 1 // an unfiltered alias dominates
				continue
			}
			filtered = true
			pass := 0
			for _, e := range events {
				if pred([]event.Event{e}) {
					pass++
				}
			}
			if frac := float64(pass) / float64(len(events)); frac > best {
				best = frac
			}
		}
		if filtered && best > 0 && best <= 1 {
			st.FilterSelectivity = best
		}
		out[l.TypeName] = st
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("optimizer: no data for any of the pattern's event types")
	}
	return out, nil
}

// scanPredicates compiles the single-alias conjuncts of the pattern's WHERE
// clause — the selections the translator pushes below the joins — into one
// predicate per alias.
func scanPredicates(p *sea.Pattern) (map[string]sea.Predicate, error) {
	byAlias := make(map[string][]sea.BoolExpr)
	for _, conj := range sea.Conjuncts(p.Where) {
		if sea.HasIndexedRef(conj) {
			continue // iteration pairwise constraint, not a scan filter
		}
		aliases := sea.Aliases(conj)
		if len(aliases) != 1 {
			continue // join predicate
		}
		byAlias[aliases[0]] = append(byAlias[aliases[0]], conj)
	}
	out := make(map[string]sea.Predicate, len(byAlias))
	for alias, conjs := range byAlias {
		pred, err := sea.CompileBool(sea.Conjoin(conjs), sea.Layout{alias: 0})
		if err != nil {
			return nil, fmt.Errorf("optimizer: compiling %s's scan filters: %w", alias, err)
		}
		out[alias] = pred
	}
	return out, nil
}

func typeAliases(p *sea.Pattern, typeName string) []string {
	var out []string
	for _, l := range p.Leaves() {
		if l.TypeName == typeName {
			out = append(out, l.Alias)
		}
	}
	return out
}

// ObservedStats reads live per-stream statistics from a running plan's
// metrics registry: source operators ("src:<Type>") give relative
// frequencies (events emitted so far), filter operators ("σ:<alias>")
// give selectivities (out/in). Relative frequencies are what join
// reordering and the cost model need — only ratios matter.
func ObservedStats(reg *obs.Registry, p *sea.Pattern) map[string]core.StreamStats {
	return observedFrom(reg.Snapshot(), p)
}

func observedFrom(snap obs.Snapshot, p *sea.Pattern) map[string]core.StreamStats {
	srcOut := make(map[string]int64)  // type name -> events emitted
	filtIn := make(map[string]int64)  // alias -> events entering its σ
	filtOut := make(map[string]int64) // alias -> events surviving its σ
	for _, op := range snap.Operators {
		switch {
		case strings.HasPrefix(op.Node, "src:"):
			srcOut[op.Node[len("src:"):]] += op.Out
		case strings.HasPrefix(op.Node, "σ:"):
			alias := op.Node[len("σ:"):]
			if i := strings.IndexByte(alias, '#'); i >= 0 {
				alias = alias[:i]
			}
			filtIn[alias] += op.In
			filtOut[alias] += op.Out
		}
	}
	out := make(map[string]core.StreamStats)
	for _, l := range p.Leaves() {
		emitted, ok := srcOut[l.TypeName]
		if !ok || emitted <= 0 {
			continue
		}
		st, seen := out[l.TypeName]
		if !seen {
			st = core.StreamStats{Frequency: float64(emitted)}
		}
		if in := filtIn[l.Alias]; in > 0 {
			sel := float64(filtOut[l.Alias]) / float64(in)
			if sel <= 0 {
				// All observed events filtered out so far: keep a floor so
				// the stream stays comparable instead of pricing at the
				// "unknown" default of 1.
				sel = 1 / float64(in)
			}
			if sel > 1 {
				sel = 1
			}
			if sel > st.FilterSelectivity {
				st.FilterSelectivity = sel // heaviest use across aliases
			}
		}
		out[l.TypeName] = st
	}
	return out
}

// sourceEventsFrom sums the events all sources have emitted — the monitor's
// progress measure.
func sourceEventsFrom(snap obs.Snapshot) int64 {
	var total int64
	for _, op := range snap.Operators {
		if strings.HasPrefix(op.Node, "src:") {
			total += op.Out
		}
	}
	return total
}

// drift returns the largest factor by which the observed streams' shares of
// the total effective input volume disagree with the estimated shares. A
// result of 1 means perfect agreement; streams missing on either side are
// skipped. Shares — not absolute rates — are compared because ObservedStats
// yields relative frequencies.
func drift(est, observed map[string]core.StreamStats) float64 {
	estEff, obsEff := make(map[string]float64), make(map[string]float64)
	var estSum, obsSum float64
	for name, s := range observed {
		e, ok := est[name]
		if !ok {
			continue
		}
		ee, oe := effectiveRate(e), effectiveRate(s)
		estEff[name], obsEff[name] = ee, oe
		estSum += ee
		obsSum += oe
	}
	if len(estEff) < 2 || estSum <= 0 || obsSum <= 0 {
		return 1
	}
	worst := 1.0
	for name := range estEff {
		a, b := estEff[name]/estSum, obsEff[name]/obsSum
		if a <= 0 || b <= 0 {
			continue
		}
		if f := math.Max(a/b, b/a); f > worst {
			worst = f
		}
	}
	return worst
}

func effectiveRate(s core.StreamStats) float64 {
	eff := s.Frequency
	if s.FilterSelectivity > 0 {
		eff *= s.FilterSelectivity
	}
	return eff
}

// uniformStats prices every pattern stream identically — the cold-start
// estimate drift is judged against when no statistics were configured.
func uniformStats(p *sea.Pattern) map[string]core.StreamStats {
	out := make(map[string]core.StreamStats)
	for _, l := range p.Leaves() {
		out[l.TypeName] = core.StreamStats{Frequency: 1, FilterSelectivity: 1}
	}
	return out
}
