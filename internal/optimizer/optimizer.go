// Package optimizer is the cost-based pattern compiler the paper leaves as
// future work: "the automated application of the proposed optimization
// opportunities" driven by collected stream statistics (§7). It layers on
// top of internal/core's rule advisor:
//
//   - statistics collection: Measure derives exact per-stream rates and
//     filter selectivities from recorded data; ObservedStats reads the
//     same quantities live from the obs registry of a running plan;
//   - plan rewriting: Advise turns statistics into core.Options with a
//     cardinality-based join cost model attached, which switches the
//     translator from heuristic ascending-frequency left-deep chains to
//     greedy cheapest-pair-first (bushy) join trees, and auto-selects
//     O1/O2/O3 per §4.3's rules;
//   - online re-planning: Run executes a plan while monitoring observed
//     selectivities; when they drift from the estimates far enough to
//     change the plan shape, it triggers a checkpoint barrier, stops the
//     run at the consistent cut, and restores into the re-optimized plan
//     without losing or duplicating matches.
package optimizer

import (
	"fmt"
	"strings"
	"time"

	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

// Config parameterizes an Optimizer.
type Config struct {
	// Stats are the initial per-type stream statistics (events per minute
	// and filter selectivity), keyed by event type name. Empty means cold
	// start: the first plan is the heuristic one and statistics are
	// learned online.
	Stats map[string]core.StreamStats
	// Parallelism is handed through to core.Advise for O3.
	Parallelism int
	// ReplanThreshold is the drift factor beyond which a re-plan is
	// considered: the largest ratio between an observed stream's share of
	// the effective input volume and its estimated share. Defaults to 2;
	// must be >= 1.
	ReplanThreshold float64
	// MaxReplans bounds how many times Run may re-plan. Zero selects the
	// default of 1; negative disables online re-planning.
	MaxReplans int
	// CheckInterval is how often Run polls observed statistics while the
	// plan executes. Defaults to 100ms.
	CheckInterval time.Duration
	// MinEvents is the number of source events that must be observed
	// before drift is judged (avoids re-planning on startup noise).
	// Defaults to 256.
	MinEvents int64
	// ReplanAfterEvents, when positive, forces exactly one re-plan as soon
	// as the sources have emitted this many events, regardless of drift —
	// a deterministic trigger for tests exercising the re-plan protocol.
	ReplanAfterEvents int64
}

// Optimizer compiles patterns into cost-optimized plans and can execute
// them with online re-planning.
type Optimizer struct {
	cfg Config
}

// New validates the configuration (fail-fast on invalid statistics) and
// returns an Optimizer.
func New(cfg Config) (*Optimizer, error) {
	if err := core.ValidateStats(cfg.Stats); err != nil {
		return nil, err
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("optimizer: parallelism %d must be non-negative", cfg.Parallelism)
	}
	if cfg.ReplanThreshold == 0 {
		cfg.ReplanThreshold = 2
	}
	if cfg.ReplanThreshold < 1 {
		return nil, fmt.Errorf("optimizer: re-plan threshold %v must be >= 1", cfg.ReplanThreshold)
	}
	if cfg.MaxReplans == 0 {
		cfg.MaxReplans = 1
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 100 * time.Millisecond
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 256
	}
	return &Optimizer{cfg: cfg}, nil
}

// JoinCostModel prices a two-way sliding window join from its input rates:
// with l and r effective events per minute and a window of W minutes,
// every right event meets l*W left candidates, so the output rate is
// l * r * W per minute (§3.1.4's per-window cross product, amortized).
// Unknown rates (<= 0) are priced at one event per minute, keeping them
// neutral rather than free.
func JoinCostModel(window event.Time) func(left, right float64) float64 {
	wmin := float64(window) / float64(event.Minute)
	if wmin <= 0 {
		wmin = 1
	}
	return func(left, right float64) float64 {
		if left <= 0 {
			left = 1
		}
		if right <= 0 {
			right = 1
		}
		return left * right * wmin
	}
}

// Advise derives cost-based Options for the pattern from the configured
// statistics: core.Advise's O1/O2/O3 selection plus the join cost model
// that switches the translator to greedy cheapest-pair-first join trees.
func (o *Optimizer) Advise(p *sea.Pattern) core.Options {
	return o.adviseWith(p, o.cfg.Stats)
}

func (o *Optimizer) adviseWith(p *sea.Pattern, stats map[string]core.StreamStats) core.Options {
	opts := core.Advise(p, stats, o.cfg.Parallelism)
	return opts.WithJoinCost(JoinCostModel(p.Window.Size))
}

// Plan translates the pattern under cost-based Options.
func (o *Optimizer) Plan(p *sea.Pattern) (*core.Plan, error) {
	return core.Translate(p, o.Advise(p))
}

// Explain translates the pattern and renders the plan with per-node
// estimated cardinalities.
func (o *Optimizer) Explain(p *sea.Pattern) (string, error) {
	plan, err := o.Plan(p)
	if err != nil {
		return "", err
	}
	return ExplainPlan(plan, o.cfg.Stats), nil
}

// ExplainPlan renders a plan tree with each node annotated with its
// estimated output rate (events per minute) under the given statistics —
// the "estimated vs. observed" half of plan diagnostics. Unknown leaf
// rates are priced at 1/min, matching JoinCostModel.
func ExplainPlan(plan *core.Plan, stats map[string]core.StreamStats) string {
	name := plan.Pattern.Name
	if name == "" {
		name = "(unnamed)"
	}
	wmin := float64(plan.Pattern.Window.Size) / float64(event.Minute)
	if wmin <= 0 {
		wmin = 1
	}
	slide := plan.Pattern.Window.Slide
	var estimate func(n core.PlanNode) float64
	estimate = func(n core.PlanNode) float64 {
		switch v := n.(type) {
		case *core.ScanPlan:
			return leafRate(stats, v.TypeName)
		case *core.JoinPlan:
			return estimate(v.Left) * estimate(v.Right) * wmin
		case *core.UnionPlan:
			var sum float64
			for _, k := range v.Branches {
				sum += estimate(k)
			}
			return sum
		case *core.AggregatePlan:
			// One count tuple per slide at most.
			if slide > 0 {
				return float64(event.Minute) / float64(slide)
			}
			return 1
		case *core.NextOccurrencePlan:
			return leafRate(stats, v.T1.TypeName)
		default:
			var sum float64
			for _, k := range n.Kids() {
				sum += estimate(k)
			}
			return sum
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s plan for pattern %s (est. events/min per node)\n", plan.Opts, name)
	var walk func(n core.PlanNode, depth int)
	walk = func(n core.PlanNode, depth int) {
		fmt.Fprintf(&b, "%s%s  — est %.4g/min\n",
			strings.Repeat("  ", depth), n.Describe(), estimate(n))
		for _, k := range n.Kids() {
			walk(k, depth+1)
		}
	}
	walk(plan.Root, 0)
	return b.String()
}

func leafRate(stats map[string]core.StreamStats, typeName string) float64 {
	s, ok := stats[typeName]
	if !ok {
		return 1
	}
	eff := s.Frequency
	if sel := s.FilterSelectivity; sel > 0 {
		eff *= sel
	}
	if eff <= 0 {
		return 1
	}
	return eff
}

func cloneStats(stats map[string]core.StreamStats) map[string]core.StreamStats {
	if stats == nil {
		return nil
	}
	out := make(map[string]core.StreamStats, len(stats))
	for k, v := range stats {
		out[k] = v
	}
	return out
}
