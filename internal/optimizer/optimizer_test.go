package optimizer

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cep2asp/internal/asp"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/sea"
)

func mustPattern(t *testing.T, src string) *sea.Pattern {
	t.Helper()
	p, err := sea.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkStream(typ event.Type, n int, seed int64) []event.Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]event.Event, n)
	ts := int64(0)
	for i := range out {
		// Timestamps on the slide grid with inter-arrival >= slide: the
		// domain where Theorem 2 guarantees the engine's completeness, so
		// the reference evaluator is a valid oracle.
		ts += (1 + rng.Int63n(3)) * event.Minute
		out[i] = event.Event{
			Type: typ, ID: int64(rng.Intn(3) + 1),
			TS:    ts,
			Value: float64(rng.Intn(100)),
		}
	}
	return out
}

func patternData(t *testing.T, p *sea.Pattern, n int, seed int64) map[event.Type][]event.Event {
	t.Helper()
	data := make(map[event.Type][]event.Event)
	for _, l := range p.Leaves() {
		if _, ok := data[l.Type]; ok {
			continue
		}
		seed++
		data[l.Type] = mkStream(l.Type, n, seed)
	}
	return data
}

func oracleKeys(p *sea.Pattern, data map[event.Type][]event.Event) []string {
	var all []event.Event
	for _, s := range data {
		all = append(all, s...)
	}
	return sortedKeys(sea.Evaluate(p, all))
}

func sortedKeys(ms []*event.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	sort.Strings(out)
	return out
}

func runOnce(t *testing.T, p *sea.Pattern, opts core.Options, data map[event.Type][]event.Event) []string {
	t.Helper()
	plan, err := core.Translate(p, opts)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	env, res, err := core.Build(plan, core.BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := env.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return sortedKeys(res.Matches())
}

// Plan equivalence: whatever join order, pushdown and operator selection
// the cost model picks — under any statistics — the optimized plan's match
// set must equal the naive topology's and the reference evaluator's.
func TestOptimizedPlanEquivalence(t *testing.T) {
	patterns := []string{
		`PATTERN SEQ(OPA a, OPB b, OPC c) WHERE a.value < 70 AND b.value >= 10 WITHIN 8 MIN SLIDE 1 MIN`,
		`PATTERN AND(OPA a, OPB b, OPC c) WHERE a.id == b.id WITHIN 6 MIN SLIDE 1 MIN`,
		`PATTERN ITER(OPV v, 3) WITHIN 6 MIN SLIDE 1 MIN`,
		`PATTERN SEQ(OPA a, !OPB n, OPC c) WHERE n.value > 50 WITHIN 8 MIN SLIDE 1 MIN`,
	}
	// Skew permutations: each assigns different relative rates and
	// selectivities, driving the greedy tree into different shapes.
	skews := []map[string]core.StreamStats{
		nil, // cost model with unknown rates
		{"OPA": {Frequency: 100}, "OPB": {Frequency: 1}, "OPC": {Frequency: 10}, "OPV": {Frequency: 5}},
		{"OPA": {Frequency: 1}, "OPB": {Frequency: 100}, "OPC": {Frequency: 100}, "OPV": {Frequency: 50}},
		{"OPA": {Frequency: 60, FilterSelectivity: 0.05}, "OPB": {Frequency: 60, FilterSelectivity: 1}, "OPC": {Frequency: 60, FilterSelectivity: 0.5}, "OPV": {Frequency: 60}},
	}
	for pi, src := range patterns {
		p := mustPattern(t, src)
		data := patternData(t, p, 35, int64(pi)*17)
		oracle := oracleKeys(p, data)
		naive := runOnce(t, p, core.Options{}, data)
		equalSets(t, "naive vs oracle", oracle, naive)
		for si, stats := range skews {
			o, err := New(Config{Stats: stats})
			if err != nil {
				t.Fatal(err)
			}
			got := runOnce(t, p, o.Advise(p), data)
			equalSets(t, src+" skew", oracle, got)
			_ = si
		}
	}
}

func equalSets(t *testing.T, label string, oracle, got []string) {
	t.Helper()
	if len(oracle) != len(got) {
		t.Fatalf("%s: oracle has %d matches, engine %d\noracle: %v\nengine: %v",
			label, len(oracle), len(got), oracle, got)
	}
	for i := range oracle {
		if oracle[i] != got[i] {
			t.Fatalf("%s: match %d differs: %s vs %s", label, i, oracle[i], got[i])
		}
	}
}

// With skewed statistics the greedy builder must produce a bushy tree:
// four equally rated streams pair up (A⋈B)⋈(C⋈D) instead of the heuristic
// left-deep chain.
func TestGreedyTreeGoesBushy(t *testing.T) {
	p := mustPattern(t, `PATTERN SEQ(OPA a, OPB b, OPC c, OPD d) WITHIN 8 MIN SLIDE 1 MIN`)
	stats := map[string]core.StreamStats{
		"OPA": {Frequency: 10}, "OPB": {Frequency: 10},
		"OPC": {Frequency: 10}, "OPD": {Frequency: 10},
	}
	o, err := New(Config{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	root, ok := plan.Root.(*core.JoinPlan)
	if !ok {
		t.Fatalf("root is %T", plan.Root)
	}
	if _, lj := root.Left.(*core.JoinPlan); !lj {
		t.Fatalf("expected bushy tree, left is %s", root.Left.Describe())
	}
	if _, rj := root.Right.(*core.JoinPlan); !rj {
		t.Fatalf("expected bushy tree, right is %s\n%s", root.Right.Describe(), plan.Explain())
	}
	// And the match set stays equivalent.
	data := patternData(t, p, 30, 99)
	equalSets(t, "bushy", oracleKeys(p, data), runOnce(t, p, o.Advise(p), data))
}

func TestMeasure(t *testing.T) {
	p := mustPattern(t, `PATTERN SEQ(OPA a, OPB b) WHERE a.value < 50 WITHIN 5 MIN SLIDE 1 MIN`)
	ta, _ := event.LookupType("OPA")
	tb, _ := event.LookupType("OPB")
	mk := func(typ event.Type, n int, step int64) []event.Event {
		out := make([]event.Event, n)
		for i := range out {
			out[i] = event.Event{Type: typ, ID: 1, TS: int64(i) * step, Value: float64(i % 100)}
		}
		return out
	}
	data := map[event.Type][]event.Event{
		ta: mk(ta, 200, event.Minute),    // 1/min, values 0..99 → sel 0.5
		tb: mk(tb, 200, event.Minute/10), // 10/min, unfiltered
	}
	stats, err := Measure(p, data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stats["OPA"], stats["OPB"]
	if a.Frequency < 0.9 || a.Frequency > 1.1 {
		t.Fatalf("OPA frequency %v, want ~1/min", a.Frequency)
	}
	if a.FilterSelectivity < 0.45 || a.FilterSelectivity > 0.55 {
		t.Fatalf("OPA selectivity %v, want ~0.5", a.FilterSelectivity)
	}
	if b.Frequency < 9 || b.Frequency > 11 {
		t.Fatalf("OPB frequency %v, want ~10/min", b.Frequency)
	}
	if b.FilterSelectivity != 0 {
		t.Fatalf("OPB has no filters, selectivity should stay unknown: %v", b.FilterSelectivity)
	}
	if err := core.ValidateStats(stats); err != nil {
		t.Fatalf("measured stats invalid: %v", err)
	}
}

func TestExplainPlanAnnotatesCosts(t *testing.T) {
	p := mustPattern(t, `PATTERN SEQ(OPA a, OPB b) WITHIN 5 MIN SLIDE 1 MIN`)
	o, err := New(Config{Stats: map[string]core.StreamStats{
		"OPA": {Frequency: 2}, "OPB": {Frequency: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est 2/min", "est 8/min", "est 80/min", "CBO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output lacks %q:\n%s", want, out)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{Stats: map[string]core.StreamStats{
		"OPA": {Frequency: 10, FilterSelectivity: 1.5},
	}}); err == nil {
		t.Fatal("invalid selectivity accepted")
	}
	if _, err := New(Config{ReplanThreshold: 0.5}); err == nil {
		t.Fatal("sub-1 re-plan threshold accepted")
	}
	if _, err := New(Config{Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
