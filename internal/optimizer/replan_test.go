package optimizer

import (
	"context"
	"testing"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
)

// Run without re-planning is a plain optimized execution: the match set
// must equal the reference evaluator's.
func TestRunWithoutReplan(t *testing.T) {
	p := mustPattern(t, `PATTERN SEQ(RPA a, RPB b) WHERE a.value < 70 WITHIN 6 MIN SLIDE 1 MIN`)
	data := patternData(t, p, 60, 7)
	o, err := New(Config{
		Stats:      map[string]core.StreamStats{"RPA": {Frequency: 1}, "RPB": {Frequency: 5}},
		MaxReplans: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := o.Run(context.Background(), p, core.BuildConfig{
		Engine:      asp.Config{WatermarkInterval: 1},
		Data:        data,
		DedupSink:   true,
		KeepMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replans != 0 || len(rep.Plans) != 1 {
		t.Fatalf("unexpected re-plans: %d (%d plans)", rep.Replans, len(rep.Plans))
	}
	equalSets(t, "no-replan", oracleKeys(p, data), sortedKeys(rep.Results.Matches()))
}

// The online re-plan protocol must preserve the exact match set: stop plan
// A at a checkpoint barrier mid-stream, rebuild with observed statistics,
// replay the tail into the shared dedup sink — no lost and no duplicated
// matches, across every operator family.
func TestReplanPreservesMatches(t *testing.T) {
	patterns := []string{
		`PATTERN SEQ(RPA a, RPB b, RPC c) WHERE a.value < 80 WITHIN 8 MIN SLIDE 1 MIN`,
		`PATTERN AND(RPA a, RPB b) WHERE a.id == b.id WITHIN 6 MIN SLIDE 1 MIN`,
		`PATTERN ITER(RPV v, 3) WITHIN 6 MIN SLIDE 1 MIN`,
		`PATTERN SEQ(RPA a, !RPB n, RPC c) WHERE n.value > 40 WITHIN 8 MIN SLIDE 1 MIN`,
	}
	for pi, src := range patterns {
		p := mustPattern(t, src)
		data := patternData(t, p, 220, int64(pi)*31)
		oracle := oracleKeys(p, data)

		o, err := New(Config{
			// Deliberately wrong estimates: the observed statistics the
			// re-plan switches to will disagree.
			Stats: map[string]core.StreamStats{
				"RPA": {Frequency: 1000}, "RPB": {Frequency: 1},
				"RPC": {Frequency: 500}, "RPV": {Frequency: 3},
			},
			ReplanAfterEvents: 120,
			CheckInterval:     3 * time.Millisecond,
			MaxReplans:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := o.Run(context.Background(), p, core.BuildConfig{
			Engine: asp.Config{WatermarkInterval: 8},
			Data:   data,
			// Throttle the sources so the run is still in flight when the
			// forced trigger fires and the barrier completes — also for
			// single-source patterns under the race detector.
			SourceRatePerSec: 500,
			DedupSink:        true,
			KeepMatches:      true,
		})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if rep.Replans != 1 {
			t.Fatalf("%s: expected exactly one re-plan, got %d", src, rep.Replans)
		}
		if len(rep.Plans) != 2 {
			t.Fatalf("%s: expected two plan generations, got %d", src, len(rep.Plans))
		}
		if len(rep.Observed) == 0 {
			t.Fatalf("%s: no observed statistics captured", src)
		}
		equalSets(t, src, oracle, sortedKeys(rep.Results.Matches()))
	}
}

// replayCutoff must rewind at least two windows behind the slowest
// source's watermark, and fall back to full replay when a source has not
// yet emitted a watermark.
func TestReplayCutoff(t *testing.T) {
	p := mustPattern(t, `PATTERN SEQ(RPA a, RPB b) WITHIN 5 MIN SLIDE 1 MIN`)
	ta, _ := event.LookupType("RPA")
	tb, _ := event.LookupType("RPB")
	mk := func(typ event.Type, n int) []event.Event {
		out := make([]event.Event, n)
		for i := range out {
			out[i] = event.Event{Type: typ, ID: 1, TS: int64(i+1) * event.Minute}
		}
		return out
	}
	data := map[event.Type][]event.Event{ta: mk(ta, 100), tb: mk(tb, 100)}

	// Both sources at offset 64 with interval 8: watermark covers the
	// first 64 events, maxTS = 64 min, wm = 64min-1. Cutoff = wm - 2W - 1.
	prog := map[string]asp.SourceProgress{
		"src:RPA": {Offset: 64, MaxTS: 64 * event.Minute},
		"src:RPB": {Offset: 64, MaxTS: 64 * event.Minute},
	}
	cut := replayCutoff(p, data, prog, 8, 0)
	wm := 64*event.Minute - 1
	want := wm - 2*p.Window.Size - 1
	if cut != want {
		t.Fatalf("cutoff %d, want %d", cut, want)
	}

	// A source below one watermark interval forces full replay.
	prog["src:RPB"] = asp.SourceProgress{Offset: 3, MaxTS: 3 * event.Minute}
	if cut := replayCutoff(p, data, prog, 8, 0); cut != event.MinWatermark {
		t.Fatalf("expected full replay, got cutoff %d", cut)
	}

	// A missing source also forces full replay.
	delete(prog, "src:RPB")
	if cut := replayCutoff(p, data, prog, 8, 0); cut != event.MinWatermark {
		t.Fatalf("expected full replay on missing source, got %d", cut)
	}
}
