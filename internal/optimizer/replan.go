package optimizer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cep2asp/internal/asp"
	"cep2asp/internal/checkpoint"
	"cep2asp/internal/core"
	"cep2asp/internal/event"
	"cep2asp/internal/obs"
	"cep2asp/internal/sea"
)

// errReplan is the failure cause Run injects to stop a plan at a completed
// checkpoint barrier; any other execution error is passed through.
var errReplan = errors.New("optimizer: re-planning at checkpoint barrier")

// Report is the outcome of an optimized execution.
type Report struct {
	// Results is the shared match sink: it survives re-plans, so its
	// dedup set spans all plan generations and the match set is exactly
	// what a single uninterrupted run would produce.
	Results *asp.Results
	// Replans counts how many times the run switched plans mid-flight.
	Replans int
	// Plans holds the cost-annotated explain output of every plan
	// generation, in execution order.
	Plans []string
	// Estimated are the statistics the first plan was built from;
	// Observed are the live statistics at the last re-plan (nil when no
	// re-plan happened).
	Estimated map[string]core.StreamStats
	Observed  map[string]core.StreamStats
	// Env is the last executed environment, for post-run accounting
	// (node stats, checkpoint stats).
	Env *asp.Environment
}

// Run compiles the pattern with the configured statistics, executes it,
// and re-plans online when observed statistics drift enough to change the
// plan shape. The re-plan protocol preserves exactly-once match semantics:
//
//  1. trigger a checkpoint barrier and wait for the aligned snapshot —
//     every record before the barrier is fully processed, every match it
//     implies emitted to the shared sink;
//  2. stop the run at the cut and read the sources' replay positions;
//  3. rebuild the re-optimized plan over the tail of the data, rewound
//     far enough (two windows before the slowest source's watermark) that
//     every window still open at the cut is regenerated;
//  4. the shared dedup sink absorbs the overlap, so replayed matches are
//     emitted once.
//
// See DESIGN.md's "Cost-based optimization" for the rewind-bound argument.
func (o *Optimizer) Run(ctx context.Context, p *sea.Pattern, bc core.BuildConfig) (*Report, error) {
	stats := cloneStats(o.cfg.Stats)
	rep := &Report{
		Results:   asp.NewResults(bc.DedupSink, bc.KeepMatches),
		Estimated: cloneStats(o.cfg.Stats),
	}
	data := bc.Data
	forced := o.cfg.ReplanAfterEvents
	for {
		opts := o.adviseWith(p, stats)
		plan, err := core.Translate(p, opts)
		if err != nil {
			return rep, err
		}
		rep.Plans = append(rep.Plans, ExplainPlan(plan, stats))

		attempt := bc
		attempt.Data = data
		reg := attempt.Engine.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
			attempt.Engine.Metrics = reg
		}
		canReplan := o.cfg.MaxReplans > 0 && rep.Replans < o.cfg.MaxReplans
		var store checkpoint.Store
		if attempt.Engine.Checkpoint != nil {
			store = attempt.Engine.Checkpoint.Store
		} else if canReplan {
			store = checkpoint.NewMemStore()
			attempt.Engine.Checkpoint = &asp.CheckpointSpec{Store: store}
		}
		canReplan = canReplan && store != nil

		env, err := core.BuildInto(plan, attempt, rep.Results)
		if err != nil {
			return rep, err
		}
		rep.Env = env

		snapID, execErr := o.supervise(ctx, env, reg, p, plan, stats, canReplan, &forced)
		if !errors.Is(execErr, errReplan) {
			return rep, execErr
		}

		// Capture the observed statistics before the next attempt's
		// registry attach resets the graph counters.
		observed := observedFrom(reg.Snapshot(), p)
		snap, err := store.Load(snapID)
		if err != nil {
			return rep, fmt.Errorf("optimizer: loading re-plan snapshot %d: %w", snapID, err)
		}
		prog, err := asp.SourceOffsets(snap)
		if err != nil {
			return rep, err
		}
		cut := replayCutoff(p, data, prog, attempt.Engine.WatermarkInterval, bc.Lateness)
		data = tailFrom(data, cut)
		stats = observed
		rep.Observed = observed
		rep.Replans++
	}
}

// supervise executes env while polling observed statistics; when a re-plan
// is warranted it triggers a checkpoint, waits for the barrier to complete,
// and aborts the run with errReplan. Returns the completed snapshot ID
// alongside the execution error.
func (o *Optimizer) supervise(ctx context.Context, env *asp.Environment, reg *obs.Registry,
	p *sea.Pattern, cur *core.Plan, stats map[string]core.StreamStats,
	canReplan bool, forced *int64) (int64, error) {
	if !canReplan {
		return 0, env.Execute(ctx)
	}
	done := make(chan error, 1)
	go func() { done <- env.Execute(ctx) }()
	tick := time.NewTicker(o.cfg.CheckInterval)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			return 0, err
		case <-tick.C:
			if !o.wantReplan(reg, p, cur, stats, forced) {
				continue
			}
			id := env.TriggerCheckpoint()
			if id == 0 {
				continue // busy or already finishing; retry next tick
			}
			if err, finished := awaitCheckpoint(env, id, done); finished {
				return 0, err
			}
			env.Fail(errReplan)
			return id, <-done
		}
	}
}

// awaitCheckpoint polls until checkpoint id completes. It returns
// (execErr, true) when the run finished first — no re-plan needed.
func awaitCheckpoint(env *asp.Environment, id int64, done chan error) (error, bool) {
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case err := <-done:
			return err, true
		case <-poll.C:
			for _, st := range env.CheckpointStats() {
				if st.ID == id {
					return nil, false
				}
			}
		}
	}
}

// wantReplan decides whether the observed statistics justify switching
// plans: enough events seen, drift beyond the threshold, and — because a
// re-plan costs a barrier plus a partial replay — only when the
// re-optimized plan actually has a different shape. A pending forced
// trigger (ReplanAfterEvents) bypasses the drift and shape checks.
func (o *Optimizer) wantReplan(reg *obs.Registry, p *sea.Pattern, cur *core.Plan,
	stats map[string]core.StreamStats, forced *int64) bool {
	snap := reg.Snapshot()
	total := sourceEventsFrom(snap)
	if *forced > 0 {
		if total < *forced {
			return false
		}
		*forced = 0 // fire exactly once
		return true
	}
	if total < o.cfg.MinEvents {
		return false
	}
	observed := observedFrom(snap, p)
	est := stats
	if len(est) == 0 {
		est = uniformStats(p) // cold start: judge against a uniform prior
	}
	if drift(est, observed) < o.cfg.ReplanThreshold {
		return false
	}
	cand, err := core.Translate(p, o.adviseWith(p, observed))
	if err != nil {
		return false
	}
	return cand.Explain() != cur.Explain()
}

// replayCutoff computes how far the rebuilt plan must rewind: the earliest
// event timestamp the tail data must include so that every match the old
// run had NOT yet emitted at the barrier is regenerated.
//
// A match with latest constituent t_max is guaranteed emitted once the
// source watermark passes t_max + W: chained window joins fire a pane at
// the latest by watermark pane_end <= t_max + W, and the next-occurrence
// UDF holds a T1 event no longer than W past its timestamp. Barrier
// alignment guarantees all pre-barrier records and watermarks were fully
// processed at every stage before the snapshot. So with minWM the slowest
// source's watermark at its checkpointed offset, only matches with
// t_max > minWM - W may be missing; their earliest constituents lie within
// one window before t_max, hence TS > minWM - 2W. Everything at or before
// minWM - 2W is already in the shared sink, whose dedup set absorbs any
// overlap from rewinding deeper than necessary.
func replayCutoff(p *sea.Pattern, data map[event.Type][]event.Event,
	prog map[string]asp.SourceProgress, wmInterval int, lateness event.Time) event.Time {
	if wmInterval <= 0 {
		wmInterval = asp.DefaultWatermarkInterval
	}
	minWM := event.Time(math.MaxInt64)
	seen := make(map[string]bool)
	for _, l := range p.Leaves() {
		if seen[l.TypeName] {
			continue
		}
		seen[l.TypeName] = true
		pr, ok := prog["src:"+l.TypeName]
		if !ok {
			return event.MinWatermark // source state missing: replay everything
		}
		// Watermarks are emitted every wmInterval records, so at offset o
		// the source's downstream watermark reflects the first k = floor(o /
		// interval) * interval events only.
		k := (pr.Offset / wmInterval) * wmInterval
		events := data[l.Type]
		if k > len(events) {
			k = len(events)
		}
		if k <= 0 {
			return event.MinWatermark // no watermark emitted yet: full replay
		}
		maxTS := events[0].TS
		for _, e := range events[:k] {
			if e.TS > maxTS {
				maxTS = e.TS
			}
		}
		if wm := asp.SourceWatermarkAt(maxTS, lateness); wm < minWM {
			minWM = wm
		}
	}
	if minWM == event.Time(math.MaxInt64) || minWM == event.MinWatermark {
		return event.MinWatermark
	}
	cut := minWM - 2*p.Window.Size - 1
	if cut > minWM { // underflow wrap
		return event.MinWatermark
	}
	return cut
}

// tailFrom keeps only events at or after the cutoff, preserving per-stream
// arrival order.
func tailFrom(data map[event.Type][]event.Event, cut event.Time) map[event.Type][]event.Event {
	if cut == event.MinWatermark {
		return data
	}
	out := make(map[event.Type][]event.Event, len(data))
	for t, evs := range data {
		kept := make([]event.Event, 0, len(evs))
		for _, e := range evs {
			if e.TS >= cut {
				kept = append(kept, e)
			}
		}
		out[t] = kept
	}
	return out
}
